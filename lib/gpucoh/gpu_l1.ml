module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Linedata = Spandex_proto.Linedata
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer
module Port = Spandex_device.Port
module Tu = Spandex.Tu
module Chassis = Spandex_l1.Chassis
module Policy = Spandex_l1.Policy

type config = {
  id : Msg.device_id;
  llc_id : Msg.device_id;
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  max_reqv_retries : int;
}

(* Line fills; valid lines carry a full data copy. *)
type line = { data : int array }

type miss = {
  m_line : int;
  collector : Tu.t;
  mutable waiters : (int * (int -> unit)) list;  (* word, continuation *)
  epoch : int;  (* self-invalidation epoch at issue; stale fills not cached *)
  mutable retries : int;
}

type wt = { wt_line : int }
type atomic = { a_word : int; a_k : int -> unit }

type outstanding = Miss of miss | Wt of wt | Atomic of atomic

type t = {
  ch : outstanding Chassis.t;
  cfg : config;
  frame : line Cache_frame.t;
  (* GPU coherence never owns: reads are self-invalidated ReqV, writes go
     through.  The policy layer still picks the request kinds so a GPU L1
     is classified exactly like every other Spandex device (Table II). *)
  policy : Policy.t;
  k_rmw : Stats.key;
  k_wt_issued : Stats.key;
  k_wt_words : Stats.key;
  mutable epoch : int;
}

let wts_outstanding t =
  let n = ref 0 in
  Mshr.iter t.ch.Chassis.outstanding ~f:(fun ~txn:_ -> function
    | Wt _ -> incr n
    | _ -> ());
  !n

let send t msg = Chassis.send t.ch msg

let request t ~txn ~kind ~line ~mask ?demand ?payload ?amo () =
  Chassis.request t.ch ~txn ~kind ~line ~mask ?demand ?payload ?amo ()

let free_txn t ~txn = Chassis.free_txn t.ch ~txn

(* ----- write-through drain -------------------------------------------------- *)

let rec drain t =
  match Store_buffer.peek_oldest_exn t.ch.Chassis.sb with
  | exception Not_found -> Chassis.check_release t.ch
  | e ->
    if not (Chassis.entry_ready t.ch e.Store_buffer.line) then
      Chassis.arm_drain t.ch ~delay:(max 1 t.cfg.coalesce_window)
    else if Mshr.is_full t.ch.Chassis.outstanding then
      () (* retried on a response *)
    else begin
      match
        Mshr.alloc t.ch.Chassis.outstanding (Wt { wt_line = e.Store_buffer.line })
      with
      | None -> ()
      | Some txn ->
        let e = Store_buffer.take_oldest_exn t.ch.Chassis.sb in
        let mask = e.Store_buffer.mask in
        let payload =
          Msg.pooled_pack ~mask ~full:e.Store_buffer.values
        in
        Stats.bump t.ch.Chassis.stats t.k_wt_issued;
        Stats.bump_by t.ch.Chassis.stats t.k_wt_words (Mask.count mask);
        let kind =
          Policy.req_of_write (t.policy.Policy.classify_write ~line:e.Store_buffer.line)
        in
        request t ~txn ~kind ~line:e.Store_buffer.line ~mask ~payload ();
        Store_buffer.release t.ch.Chassis.sb e;
        (* A freed entry may unblock a stalled store. *)
        Chassis.wake_stalled t.ch;
        drain t
    end

(* ----- loads ---------------------------------------------------------------- *)

let install_line t ~line values =
  (match Cache_frame.find_exn t.frame ~line with
  | l -> Array.blit values 0 l.data 0 Addr.words_per_line
  | exception Not_found -> (
    match
      Cache_frame.insert t.frame ~line
        { data = Array.copy values }
        ~can_evict:(fun ~line:_ _ -> true)
    with
    | Cache_frame.Inserted -> ()
    | Cache_frame.Evicted _ -> Stats.incr t.ch.Chassis.stats "evictions"
    | Cache_frame.No_room -> assert false));
  (* Stores buffered for this line must stay visible to local loads. *)
  match Store_buffer.find t.ch.Chassis.sb ~line with
  | None -> ()
  | Some e -> (
    match Cache_frame.find_exn t.frame ~line with
    | l ->
      Mask.iter e.Store_buffer.mask ~f:(fun w ->
          l.data.(w) <- e.Store_buffer.values.(w))
    | exception Not_found -> ())

let complete_miss t ~txn (m : miss) (r : Tu.result) =
  free_txn t ~txn;
  if m.epoch = t.epoch then install_line t ~line:m.m_line r.Tu.values
  else Stats.incr t.ch.Chassis.stats "stale_fill_dropped";
  List.iter (fun (w, k) -> k r.Tu.values.(w)) (List.rev m.waiters);
  drain t

(* A Nacked ReqV raced past an ownership change: retry, then convert to a
   ReqWT+data (performed at the LLC) to enforce ordering (§III-C case 3). *)
let handle_nacks t ~txn (m : miss) (r : Tu.result) =
  Chassis.trace_nack t.ch ~txn ~count:(Mask.count r.Tu.nacked);
  (* Carry what already arrived into the fresh collector.  A retransmitted
     response may have supplied data for words that were also Nacked; the
     seed then covers the whole remaining demand and no retry is needed —
     issuing one anyway would land its response on a completed collector. *)
  let seed collector =
    Tu.absorb collector
      (Msg.make ~txn ~kind:(Msg.Rsp Msg.RspV)
         ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
         ~payload:
           (Msg.pooled_pack
              ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
              ~full:r.Tu.values)
         ~line:m.m_line ~src:t.cfg.id ~dst:t.cfg.id ())
  in
  if m.retries < t.cfg.max_reqv_retries then begin
    let fresh = Tu.create ~demand:r.Tu.nacked in
    match seed fresh with
    | Some r' -> complete_miss t ~txn m r'
    | None ->
      m.retries <- m.retries + 1;
      Stats.incr t.ch.Chassis.stats "reqv_retry";
      let m' = { m with collector = fresh; retries = m.retries } in
      free_txn t ~txn;
      (match Mshr.alloc t.ch.Chassis.outstanding (Miss m') with
      | Some txn' ->
        request t ~txn:txn' ~kind:Msg.ReqV ~line:m.m_line ~mask:r.Tu.nacked
          ~demand:r.Tu.nacked ();
        Chassis.trace_chain t.ch ~txn ~txn'
      | None -> assert false (* we just freed a slot *))
  end
  else begin
    (* One ReqWT+data (atomic read) per still-missing word. *)
    let base = Tu.create ~demand:r.Tu.nacked in
    match seed base with
    | Some r' -> complete_miss t ~txn m r'
    | None ->
      Stats.incr t.ch.Chassis.stats "reqv_converted";
      let m' = { m with collector = base } in
      free_txn t ~txn;
      (match Mshr.alloc t.ch.Chassis.outstanding (Miss m') with
      | Some txn' ->
        Mask.iter r.Tu.nacked ~f:(fun w ->
            request t ~txn:txn' ~kind:Msg.ReqWTdata ~line:m.m_line
              ~mask:(Mask.singleton w) ~amo:Amo.Read ());
        Chassis.trace_chain t.ch ~txn ~txn'
      | None -> assert false)
  end

let rec load t (addr : Addr.t) ~k =
  (* Hit paths go straight to the engine's closure-free Apply event. *)
  match Store_buffer.forward t.ch.Chassis.sb ~addr with
  | Some v ->
    Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_sb_fwd;
    Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k v
  | None -> (
    match Cache_frame.find_exn t.frame ~line:addr.Addr.line with
    | l ->
      Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_hit;
      Cache_frame.touch t.frame ~line:addr.Addr.line;
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
        l.data.(addr.Addr.word)
    | exception Not_found -> (
      Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_miss;
      (* Coalesce with an outstanding miss of the current epoch. *)
      match
        Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
          | Miss m -> m.m_line = addr.Addr.line && m.epoch = t.epoch
          | _ -> false)
      with
      | Miss m ->
        Stats.incr t.ch.Chassis.stats "load_miss_coalesced";
        m.waiters <- (addr.Addr.word, k) :: m.waiters
      | _ -> assert false
      | exception Not_found -> (
        let m =
          {
            m_line = addr.Addr.line;
            collector = Tu.create ~demand:Addr.full_mask;
            waiters = [ (addr.Addr.word, k) ];
            epoch = t.epoch;
            retries = 0;
          }
        in
        match Mshr.alloc t.ch.Chassis.outstanding (Miss m) with
        | Some txn ->
          (* Line-granularity read (Table II). *)
          let kind =
            Policy.req_of_read
              (t.policy.Policy.classify_read ~line:addr.Addr.line Policy.absent)
          in
          request t ~txn ~kind ~line:addr.Addr.line ~mask:Addr.full_mask ()
        | None ->
          (* MSHRs exhausted: retry shortly. *)
          Stats.incr t.ch.Chassis.stats "mshr_stall";
          Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () -> load t addr ~k))))

(* ----- stores and atomics --------------------------------------------------- *)

let rec store t (addr : Addr.t) ~value ~k =
  match
    Store_buffer.push t.ch.Chassis.sb ~addr ~value
      ~now:(Engine.now t.ch.Chassis.engine)
  with
  | `Coalesced | `New ->
    (* Keep a valid cached copy coherent with the local write. *)
    (match Cache_frame.find_exn t.frame ~line:addr.Addr.line with
    | l -> l.data.(addr.Addr.word) <- value
    | exception Not_found -> ());
    Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_stores;
    Chassis.arm_drain t.ch ~delay:1;
    Engine.schedule t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
  | `Full -> Chassis.stall_store t.ch (fun () -> store t addr ~value ~k)

let rmw t (addr : Addr.t) amo ~k =
  (* Atomics bypass the L1 and execute at the backing cache (§II-B). *)
  Stats.bump t.ch.Chassis.stats t.k_rmw;
  match
    Mshr.alloc t.ch.Chassis.outstanding
      (Atomic { a_word = addr.Addr.word; a_k = k })
  with
  | Some txn ->
    (* The returned data makes any cached copy of the line stale. *)
    Cache_frame.remove t.frame ~line:addr.Addr.line;
    request t ~txn ~kind:Msg.ReqWTdata ~line:addr.Addr.line
      ~mask:(Mask.singleton addr.Addr.word) ~amo ()
  | None ->
    Stats.incr t.ch.Chassis.stats "mshr_stall";
    Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () ->
        let rec retry () =
          match
            Mshr.alloc t.ch.Chassis.outstanding
              (Atomic { a_word = addr.Addr.word; a_k = k })
          with
          | Some txn ->
            Cache_frame.remove t.frame ~line:addr.Addr.line;
            request t ~txn ~kind:Msg.ReqWTdata ~line:addr.Addr.line
              ~mask:(Mask.singleton addr.Addr.word) ~amo ()
          | None -> Engine.schedule t.ch.Chassis.engine ~delay:4 retry
        in
        retry ())

(* ----- synchronization ------------------------------------------------------ *)

let acquire t ~k =
  (* Flash self-invalidation of all Valid data: single cycle (§IV-A). *)
  Stats.incr t.ch.Chassis.stats "acquire_flash";
  Stats.add t.ch.Chassis.stats "flash_invalidated" (Cache_frame.count t.frame)
  |> ignore;
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line _ -> line :: acc)
  in
  List.iter (fun line -> Cache_frame.remove t.frame ~line) lines;
  t.epoch <- t.epoch + 1;
  Engine.schedule t.ch.Chassis.engine ~delay:1 k

let release t ~k = Chassis.release t.ch ~k

(* ----- responses ------------------------------------------------------------ *)

let handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Rsp _ -> (
    match Mshr.find_exn t.ch.Chassis.outstanding ~txn:msg.Msg.txn with
    | exception Not_found -> Stats.incr t.ch.Chassis.stats "orphan_rsp"
    | Wt _ ->
      (match msg.Msg.kind with
      | Msg.Rsp Msg.RspWT | Msg.Rsp Msg.RspO -> ()
      | _ -> failwith "Gpu_l1: unexpected write-through response");
      free_txn t ~txn:msg.Msg.txn;
      Chassis.check_release t.ch;
      drain t
    | Atomic a -> (
      match (msg.Msg.kind, msg.Msg.payload) with
      | Msg.Rsp Msg.RspWTdata, (Msg.Data values | Msg.Data_pooled values) ->
        free_txn t ~txn:msg.Msg.txn;
        a.a_k values.(0);
        drain t
      | _ -> failwith "Gpu_l1: unexpected atomic response")
    | Miss m -> (
      match Tu.absorb m.collector msg with
      | None -> ()
      | Some r ->
        if Mask.is_empty r.Tu.nacked then complete_miss t ~txn:msg.Msg.txn m r
        else handle_nacks t ~txn:msg.Msg.txn m r))
  | Msg.Probe Msg.Inv ->
    (* No Shared state: a (defensive) Inv is acknowledged without action
       (§III-C case 3). *)
    send t
      (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp Msg.Ack) ~line:msg.Msg.line
         ~mask:msg.Msg.mask ~src:t.cfg.id ~dst:msg.Msg.src ())
  | Msg.Probe Msg.RvkO | Msg.Req _ ->
    failwith "Gpu_l1: received an ownership request but holds no ownership"

(* ----- construction --------------------------------------------------------- *)

let quiescent t = Chassis.quiescent t.ch

let describe_pending t =
  Chassis.describe_pending t.ch ~name:"gpu_l1"
    ~describe:(function
      | Miss m -> Printf.sprintf "Miss line %d" m.m_line
      | Wt w -> Printf.sprintf "Wt line %d" w.wt_line
      | Atomic a -> Printf.sprintf "Atomic word %d" a.a_word)
    ~extra:[]

let trace_sample t ~time = Chassis.trace_sample t.ch ~time ()

let register_metrics t ~device reg =
  Chassis.register_metrics t.ch ~device reg

let create engine net cfg =
  let ch =
    Chassis.create engine net ~id:cfg.id ~home_id:cfg.llc_id
      ~home_banks:cfg.llc_banks ~hit_latency:cfg.hit_latency
      ~coalesce_window:cfg.coalesce_window ~mshrs:cfg.mshrs
      ~sb_capacity:cfg.sb_capacity ~level:"l1" ~aux:"sb"
  in
  let t =
    {
      ch;
      cfg;
      frame = Cache_frame.create ~sets:cfg.sets ~ways:cfg.ways;
      policy =
        Policy.static ~name:"gpu-through" ~read:Policy.Read_valid
          ~write:Policy.Write_through;
      k_rmw = Stats.key ch.Chassis.stats "rmw";
      k_wt_issued = Stats.key ch.Chassis.stats "wt_issued";
      k_wt_words = Stats.key ch.Chassis.stats "wt_words";
      epoch = 0;
    }
  in
  ch.Chassis.drain <- (fun () -> drain t);
  ch.Chassis.writes_pending <- (fun () -> wts_outstanding t);
  ch.Chassis.source_line <-
    (function Miss m -> m.m_line | Wt w -> w.wt_line | Atomic _ -> -1);
  ch.Chassis.source_what <-
    (function
    | Miss _ -> "Read miss"
    | Wt _ -> "Write-through"
    | Atomic _ -> "Atomic at LLC");
  Network.register net ~id:cfg.id (fun msg -> handle t msg);
  t

let port t =
  {
    Port.load = (fun addr ~k -> load t addr ~k);
    store = (fun addr ~value ~k -> store t addr ~value ~k);
    rmw = (fun addr amo ~k -> rmw t addr amo ~k);
    acquire = (fun ~k -> acquire t ~k);
    (* No region support: a conservative full flash (paper II-C attributes
       regions to DeNovo). *)
    acquire_region = (fun ~region:_ ~k -> acquire t ~k);
    release = (fun ~k -> release t ~k);
    quiescent = (fun () -> quiescent t);
    describe_pending = (fun () -> describe_pending t);
  }

let stats t = t.ch.Chassis.stats
let holds_line t ~line = Cache_frame.find t.frame ~line <> None

let peek_word t (addr : Addr.t) =
  Option.map
    (fun l -> l.data.(addr.Addr.word))
    (Cache_frame.find t.frame ~line:addr.Addr.line)

let valid_lines t = Cache_frame.count t.frame

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fp_collector fp c =
  let r = Tu.peek c in
  Fp.int fp (r.Tu.data_mask :> int);
  Fp.int fp (r.Tu.acked :> int);
  Fp.int fp (r.Tu.nacked :> int);
  Fp.masked_array fp ~mask:r.Tu.data_mask r.Tu.values

let fingerprint t fp =
  Fp.tag fp "gpu_l1";
  Fp.int fp t.cfg.id;
  Fp.int fp t.epoch;
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line l -> (line, l) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, l) ->
      Fp.int fp line;
      Fp.array fp l.data)
    lines;
  Chassis.fingerprint t.ch fp
    ~key:(function
      | Miss m -> (m.m_line * 4) + 0
      | Wt w -> (w.wt_line * 4) + 1
      | Atomic a -> (a.a_word * 4) + 2)
    ~payload:(fun fp -> function
      | Miss m ->
        Fp.tag fp "R";
        Fp.int fp m.m_line;
        Fp.int fp (t.epoch - m.epoch);
        Fp.int fp m.retries;
        Fp.list fp Fp.int (List.sort compare (List.map fst m.waiters));
        fp_collector fp m.collector
      | Wt w ->
        Fp.tag fp "W";
        Fp.int fp w.wt_line
      | Atomic a ->
        Fp.tag fp "A";
        Fp.int fp a.a_word)
