(** Miss status holding registers.

    A capacity-limited table of outstanding transactions, generic over the
    per-miss bookkeeping each protocol needs.  Entries are keyed by the
    transaction id of the request they track. *)

type 'a t

val create : ?fresh_txn:(unit -> int) -> capacity:int -> unit -> 'a t
(** [fresh_txn] (default {!Spandex_proto.Txn.fresh}) supplies transaction
    ids for {!alloc}; devices pass a per-device {!Spandex_proto.Txn.next}
    so ids stay interleave-independent under the PDES backend. *)

val alloc : 'a t -> 'a -> int option
(** Allocate an entry under a fresh transaction id, or [None] if full. *)

val find : 'a t -> txn:int -> 'a option

val find_exn : 'a t -> txn:int -> 'a
(** Allocation-free {!find}; raises [Not_found] when absent.  For hot
    paths — pair with a [match ... with exception Not_found] handler. *)

val free : 'a t -> txn:int -> unit
val is_full : 'a t -> bool
val count : 'a t -> int
val capacity : 'a t -> int

val find_first : 'a t -> f:('a -> bool) -> (int * 'a) option
(** Entry with the smallest transaction id satisfying [f] — i.e. the oldest
    matching miss. *)

val find_first_exn : 'a t -> f:('a -> bool) -> 'a
(** Allocation-free {!find_first} when the txn id is not needed; raises
    [Not_found] when no entry matches. *)

val exists : 'a t -> f:('a -> bool) -> bool
(** Allocation-free [find_first ... <> None].  Unlike {!find_first} the
    scan may stop at the first match in slot order, so [f] must be pure. *)

val iter : 'a t -> f:(txn:int -> 'a -> unit) -> unit
