(** Address-interleaved banked tag array.

    Bank [b] holds the lines ≡ b (mod banks), keyed inside the bank by
    [line / banks].  Because [banks] must divide [sets], global set [s]
    corresponds exactly to (bank [s mod banks], bank-local set
    [s / banks]): conflict sets and per-set LRU order are unchanged, so
    banking is behaviour-neutral — what it buys is structural.  Each bank
    owns a disjoint slice of the tag/state arrays, making a bank a
    self-contained unit the PDES backend can place on any shard.  Shared
    by the Spandex LLC and the MESI directory. *)

type 'a t

val create : banks:int -> sets:int -> ways:int -> 'a t
(** Raises [Invalid_argument] unless [banks ≥ 1] and [banks] divides
    [sets]. *)

val banks : 'a t -> int

val find : 'a t -> line:int -> 'a option
val find_exn : 'a t -> line:int -> 'a
val touch : 'a t -> line:int -> unit
val remove : 'a t -> line:int -> unit

val insert :
  'a t ->
  line:int ->
  'a ->
  can_evict:(line:int -> 'a -> bool) ->
  'a Cache_frame.insert_result
(** All line numbers (argument, [can_evict] callback, [Evicted] result)
    are global. *)

val lru_matching :
  'a t -> set_line:int -> f:(line:int -> 'a -> bool) -> (int * 'a) option
(** LRU-first scan of [set_line]'s conflict set (which lives entirely in
    one bank); global line numbers. *)

val fold : 'a t -> init:'b -> f:('b -> line:int -> 'a -> 'b) -> 'b
(** Over all banks, in bank order. *)

val fold_bank : 'a t -> int -> init:'b -> f:('b -> line:int -> 'a -> 'b) -> 'b
(** Over one bank's resident lines only — the shard-local view. *)

val count : 'a t -> int
val count_bank : 'a t -> int -> int
