module Engine = Spandex_sim.Engine
module Linedata = Spandex_proto.Linedata

type t = {
  engine : Engine.t;
  latency : int;
  service_interval : int;
  lines : (int, int array) Hashtbl.t;
  mutable next_free : int;
  mutable reads : int;
  mutable writes : int;
}

let create engine ~latency ~service_interval =
  {
    engine;
    latency;
    service_interval;
    lines = Hashtbl.create 4096;
    next_free = 0;
    reads = 0;
    writes = 0;
  }

let backing t line =
  match Hashtbl.find_opt t.lines line with
  | Some a -> a
  | None ->
    let a = Linedata.fresh_line ~line in
    Hashtbl.add t.lines line a;
    a

let read_line t ~line ~k =
  t.reads <- t.reads + 1;
  let now = Engine.now t.engine in
  let start = if t.next_free > now then t.next_free else now in
  t.next_free <- start + t.service_interval;
  Engine.at t.engine ~time:(start + t.latency) (fun () ->
      k (Array.copy (backing t line)))

let write_words t ~line ~mask ~values =
  t.writes <- t.writes + 1;
  Linedata.unpack_into ~mask ~values ~full:(backing t line)

let peek_word t { Spandex_proto.Addr.line; word } = (backing t line).(word)
let reads t = t.reads
let writes t = t.writes

(* Accesses queued behind the service-rate limiter right now: how far
   [next_free] runs ahead of the clock, in service slots. *)
let queue_depth t =
  if t.service_interval <= 0 then 0
  else begin
    let now = Engine.now t.engine in
    if t.next_free > now then
      (t.next_free - now + t.service_interval - 1) / t.service_interval
    else 0
  end

let register_metrics t reg =
  let module Metrics = Spandex_obs.Metrics in
  Metrics.gauge reg ~name:"spandex_dram_queue_depth"
    ~help:"DRAM accesses waiting behind the service-rate limiter"
    (fun () -> queue_depth t);
  Metrics.counter reg ~name:"spandex_dram_reads_total"
    ~help:"line reads issued to backing memory" (fun () -> t.reads);
  Metrics.counter reg ~name:"spandex_dram_writes_total"
    ~help:"masked line writes committed to backing memory" (fun () ->
      t.writes)
