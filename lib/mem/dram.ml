module Engine = Spandex_sim.Engine
module Linedata = Spandex_proto.Linedata

(* One independent DRAM channel: its own service queue, timing state and
   line store.  A channel belongs to exactly one LLC/directory bank (lines
   ≡ bank (mod banks) route here), so it shares no mutable state with any
   other channel and can live on whatever PDES shard its bank lives on. *)
module Channel = struct
  type t = {
    engine : Engine.t;
    latency : int;
    service_interval : int;
    lines : (int, int array) Hashtbl.t;
    mutable next_free : int;
    mutable reads : int;
    mutable writes : int;
    mutable peak_queue : int;
  }

  let create engine ~latency ~service_interval =
    {
      engine;
      latency;
      service_interval;
      lines = Hashtbl.create 4096;
      next_free = 0;
      reads = 0;
      writes = 0;
      peak_queue = 0;
    }

  let backing t line =
    match Hashtbl.find_opt t.lines line with
    | Some a -> a
    | None ->
      let a = Linedata.fresh_line ~line in
      Hashtbl.add t.lines line a;
      a

  (* Accesses queued behind the service-rate limiter right now: how far
     [next_free] runs ahead of the clock, in service slots. *)
  let queue_depth t =
    if t.service_interval <= 0 then 0
    else begin
      let now = Engine.now t.engine in
      if t.next_free > now then
        (t.next_free - now + t.service_interval - 1) / t.service_interval
      else 0
    end

  let read_line t ~line ~k =
    t.reads <- t.reads + 1;
    let now = Engine.now t.engine in
    let start = if t.next_free > now then t.next_free else now in
    t.next_free <- start + t.service_interval;
    (* The queue is deepest right after an enqueue, so sampling here
       captures the true peak (a deterministic, simulated quantity). *)
    let depth = queue_depth t in
    if depth > t.peak_queue then t.peak_queue <- depth;
    Engine.at t.engine ~time:(start + t.latency) (fun () ->
        k (Array.copy (backing t line)))

  let write_words t ~line ~mask ~values =
    t.writes <- t.writes + 1;
    Linedata.unpack_into ~mask ~values ~full:(backing t line)

  let peek_word t { Spandex_proto.Addr.line; word } = (backing t line).(word)
  let reads t = t.reads
  let writes t = t.writes
  let peak_queue_depth t = t.peak_queue

  let register_metrics t ?(labels = []) reg =
    let module Metrics = Spandex_obs.Metrics in
    Metrics.gauge reg ~name:"spandex_dram_queue_depth" ~labels
      ~help:"DRAM accesses waiting behind the service-rate limiter"
      (fun () -> queue_depth t);
    Metrics.counter reg ~name:"spandex_dram_reads_total" ~labels
      ~help:"line reads issued to backing memory" (fun () -> t.reads);
    Metrics.counter reg ~name:"spandex_dram_writes_total" ~labels
      ~help:"masked line writes committed to backing memory" (fun () ->
        t.writes)
end

(* The memory system: one channel per LLC bank (banked), or a single
   channel (the classic shared-queue model).  Lines interleave across
   channels exactly as they interleave across LLC banks ([line mod
   channels]), so each bank's traffic lands on its own channel. *)
type t = { channels : Channel.t array }

let create engine ~latency ~service_interval =
  { channels = [| Channel.create engine ~latency ~service_interval |] }

let create_banked engines ~latency ~service_interval =
  if Array.length engines = 0 then invalid_arg "Dram.create_banked: no banks";
  {
    channels =
      Array.map (fun e -> Channel.create e ~latency ~service_interval) engines;
  }

let channels t = t.channels
let channel_of_line t ~line = t.channels.(line mod Array.length t.channels)

let read_line t ~line ~k = Channel.read_line (channel_of_line t ~line) ~line ~k

let write_words t ~line ~mask ~values =
  Channel.write_words (channel_of_line t ~line) ~line ~mask ~values

let peek_word t ({ Spandex_proto.Addr.line; _ } as a) =
  Channel.peek_word (channel_of_line t ~line) a

let sum f t = Array.fold_left (fun acc c -> acc + f c) 0 t.channels
let reads t = sum Channel.reads t
let writes t = sum Channel.writes t
let queue_depth t = sum Channel.queue_depth t

let register_metrics t reg =
  match t.channels with
  | [| c |] -> Channel.register_metrics c reg
  | cs ->
    Array.iteri
      (fun b c ->
        Channel.register_metrics c ~labels:[ ("bank", string_of_int b) ] reg)
      cs
