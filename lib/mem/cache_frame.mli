(** Set-associative tag array with LRU replacement, generic over the
    per-line metadata a protocol attaches.

    Allocation is always at line granularity (paper §III-B); protocols that
    track word-granularity state keep it inside their metadata. *)

type 'a t

val create : sets:int -> ways:int -> 'a t

val size_lines : bytes:int -> ways:int -> int * int
(** [size_lines ~bytes ~ways] is [(sets, ways)] for a cache of [bytes]
    capacity with 64-byte lines. *)

val find : 'a t -> line:int -> 'a option
(** Lookup without touching LRU state. *)

val find_exn : 'a t -> line:int -> 'a
(** Allocation-free {!find}; raises [Not_found] when absent.  For hot
    paths — pair with a [match ... with exception Not_found] handler. *)

val mem : 'a t -> line:int -> bool

val touch : 'a t -> line:int -> unit
(** Mark [line] most recently used. *)

val remove : 'a t -> line:int -> unit

type 'a insert_result =
  | Inserted
  | Evicted of int * 'a  (** victim line and its metadata; already removed. *)
  | No_room  (** every way of the set is pinned; caller must retry later. *)

val insert :
  'a t -> line:int -> 'a -> can_evict:(line:int -> 'a -> bool) -> 'a insert_result
(** Insert [line] (which must not be present).  If the set is full, the
    least recently used line satisfying [can_evict] is evicted. *)

val lru_matching :
  'a t -> set_line:int -> f:(line:int -> 'a -> bool) -> (int * 'a) option
(** Least-recently-used line in the set [set_line] maps to that satisfies
    [f]; used to pick purge victims deterministically. *)

val iter : 'a t -> f:(line:int -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:('b -> line:int -> 'a -> 'b) -> 'b
val count : 'a t -> int
val capacity : 'a t -> int
