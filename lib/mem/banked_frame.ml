(* Address-interleaved banked tag array: bank [b] holds the lines ≡ b
   (mod banks), keyed inside the bank by [line / banks].  Because [banks]
   divides [sets], global set [s] corresponds exactly to (bank [s mod
   banks], bank-local set [s / banks]) — the conflict sets and per-set LRU
   order are unchanged, so banking is behaviour-neutral.  What it buys is
   structural: each bank owns a disjoint slice of the tag/state arrays, so
   a bank is a self-contained unit the PDES backend can treat as a
   partition boundary.  Shared by the Spandex LLC and the MESI directory. *)

type 'a t = { frames : 'a Cache_frame.t array; banks : int }

let create ~banks ~sets ~ways =
  if banks < 1 then invalid_arg "Banked_frame: banks must be positive";
  if sets mod banks <> 0 then
    invalid_arg "Banked_frame: sets must be divisible by banks";
  {
    frames =
      Array.init banks (fun _ -> Cache_frame.create ~sets:(sets / banks) ~ways);
    banks;
  }

let banks t = t.banks
let bank t line = t.frames.(line mod t.banks)
let local t line = line / t.banks
let global t b local = (local * t.banks) + b
let find t ~line = Cache_frame.find (bank t line) ~line:(local t line)
let find_exn t ~line = Cache_frame.find_exn (bank t line) ~line:(local t line)
let touch t ~line = Cache_frame.touch (bank t line) ~line:(local t line)
let remove t ~line = Cache_frame.remove (bank t line) ~line:(local t line)

let insert t ~line m ~can_evict =
  let b = line mod t.banks in
  match
    Cache_frame.insert t.frames.(b) ~line:(local t line) m
      ~can_evict:(fun ~line m -> can_evict ~line:(global t b line) m)
  with
  | Cache_frame.Evicted (vline, vm) -> Cache_frame.Evicted (global t b vline, vm)
  | (Cache_frame.Inserted | Cache_frame.No_room) as r -> r

let lru_matching t ~set_line ~f =
  let b = set_line mod t.banks in
  Cache_frame.lru_matching t.frames.(b) ~set_line:(local t set_line)
    ~f:(fun ~line m -> f ~line:(global t b line) m)
  |> Option.map (fun (vline, vm) -> (global t b vline, vm))

let fold_bank t b ~init ~f =
  Cache_frame.fold t.frames.(b) ~init ~f:(fun acc ~line m ->
      f acc ~line:(global t b line) m)

let fold t ~init ~f =
  let acc = ref init in
  for b = 0 to t.banks - 1 do
    acc := fold_bank t b ~init:!acc ~f
  done;
  !acc

let count_bank t b = Cache_frame.count t.frames.(b)
let count t = Array.fold_left (fun a fr -> a + Cache_frame.count fr) 0 t.frames
