(* Flat slot arrays instead of a Hashtbl: MSHRs are small (tens of
   entries), so linear scans beat hashing, and alloc/free touch no heap —
   no bucket cells, no resize.  [txns.(i) = -1] marks a free slot; [vals]
   is created lazily on the first alloc because ['a] has no default. *)
type 'a t = {
  capacity : int;
  txns : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable hi : int;  (* scan bound: every slot at index >= hi is free *)
  fresh : unit -> int;  (* txn-id source; per-device under PDES *)
}

let create ?(fresh_txn = Spandex_proto.Txn.fresh) ~capacity () =
  assert (capacity > 0);
  {
    capacity;
    txns = Array.make capacity (-1);
    vals = [||];
    len = 0;
    hi = 0;
    fresh = fresh_txn;
  }

let is_full t = t.len >= t.capacity
let count t = t.len
let capacity t = t.capacity

let alloc t v =
  if is_full t then None
  else begin
    if Array.length t.vals = 0 then t.vals <- Array.make t.capacity v;
    let i = ref 0 in
    while t.txns.(!i) >= 0 do
      incr i
    done;
    let txn = t.fresh () in
    t.txns.(!i) <- txn;
    t.vals.(!i) <- v;
    if !i >= t.hi then t.hi <- !i + 1;
    t.len <- t.len + 1;
    Some txn
  end

let find_exn t ~txn =
  let n = t.hi in
  let rec go i =
    if i >= n then raise Not_found
    else if t.txns.(i) = txn then t.vals.(i)
    else go (i + 1)
  in
  go 0

let find t ~txn =
  match find_exn t ~txn with v -> Some v | exception Not_found -> None

let free t ~txn =
  for i = 0 to t.hi - 1 do
    if t.txns.(i) = txn then begin
      t.txns.(i) <- -1;
      (* [vals.(i)] keeps its last record alive until the slot is reused;
         the table is bounded so this pins at most [capacity] records. *)
      t.len <- t.len - 1
    end
  done;
  while t.hi > 0 && t.txns.(t.hi - 1) < 0 do
    t.hi <- t.hi - 1
  done

let find_first t ~f =
  let besti = ref (-1) in
  for i = 0 to t.hi - 1 do
    let txn = t.txns.(i) in
    if txn >= 0 && (!besti < 0 || txn < t.txns.(!besti)) && f t.vals.(i) then
      besti := i
  done;
  if !besti < 0 then None else Some (t.txns.(!besti), t.vals.(!besti))

let find_first_exn t ~f =
  let besti = ref (-1) in
  for i = 0 to t.hi - 1 do
    let txn = t.txns.(i) in
    if txn >= 0 && (!besti < 0 || txn < t.txns.(!besti)) && f t.vals.(i) then
      besti := i
  done;
  if !besti < 0 then raise Not_found else t.vals.(!besti)

let exists t ~f =
  let n = t.hi in
  let rec go i =
    i < n && ((t.txns.(i) >= 0 && f t.vals.(i)) || go (i + 1))
  in
  go 0

let iter t ~f =
  for i = 0 to t.hi - 1 do
    if t.txns.(i) >= 0 then f ~txn:t.txns.(i) t.vals.(i)
  done
