(** Coalescing store buffer.

    Pending stores are held per line with a word mask and values; stores to
    a line already buffered coalesce into one entry (paper §II-B/§II-C:
    both GPU coherence and DeNovo coalesce stores to the same line in the
    write buffer).  The owning L1 decides when and how entries are issued
    (write-through vs. ownership). *)

type entry = {
  mutable line : int;
  mutable mask : Spandex_util.Mask.t;
  values : int array;  (** full line array; only masked words are live. *)
  mutable age : int;
      (** cycle of the most recent store to the line (the coalescing-window
          clock the drain logic compares against). *)
}

type t

val create : capacity:int -> t
(** [capacity] is the maximum number of line entries. *)

val push :
  t ->
  addr:Spandex_proto.Addr.t ->
  value:int ->
  now:int ->
  [ `Coalesced | `New | `Full ]
(** Add a store at cycle [now] (recorded as the entry's [age]).  [`Full]
    means no entry exists for the line and the buffer is at capacity; the
    core must stall and retry after a drain. *)

val is_empty : t -> bool
val count : t -> int

val take_oldest : t -> entry option
(** Remove and return the oldest entry (FIFO order of line allocation). *)

val take_oldest_exn : t -> entry
(** Allocation-free {!take_oldest}; raises [Not_found] when empty. *)

val peek_oldest : t -> entry option
(** The oldest entry without removing it. *)

val peek_oldest_exn : t -> entry
(** Allocation-free {!peek_oldest}; raises [Not_found] when empty. *)

val release : t -> entry -> unit
(** Return an entry obtained from {!take_oldest} to the internal free list
    once the caller is completely done with it; a later push may reuse the
    record and its values array. *)

val find : t -> line:int -> entry option
(** Entry for [line] if buffered; used for store-to-load forwarding. *)

val mem : t -> line:int -> bool
(** Allocation-free presence test. *)

val age : t -> line:int -> int
(** Cycle of the last store to [line]; 0 when the line is not buffered.
    Allocation-free. *)

val forward : t -> addr:Spandex_proto.Addr.t -> int option
(** Value a load of [addr] must observe from the buffer, if any. *)

val remove : t -> line:int -> unit
val iter : t -> f:(entry -> unit) -> unit
