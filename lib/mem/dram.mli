(** Backing memory.

    Holds the authoritative copy of every line not owned on chip, split
    into independent per-bank channels.  Reads cost [latency] cycles plus
    queuing at a fixed per-channel service rate; writes update state
    immediately (write latency is off the critical path for every
    protocol studied).  Never-written words read as
    {!Spandex_proto.Linedata.init_word}.

    Lines interleave across channels the same way they interleave across
    LLC banks ([line mod channels]), so with one channel per bank each
    bank's memory traffic touches only its own channel — no cross-bank
    shared mutable state, which is what lets the PDES backend place a
    bank + its channel on any shard. *)

(** One independent DRAM channel: its own queue, timing and line store. *)
module Channel : sig
  type t

  val read_line : t -> line:int -> k:(int array -> unit) -> unit
  val write_words :
    t -> line:int -> mask:Spandex_util.Mask.t -> values:int array -> unit

  val queue_depth : t -> int

  val peak_queue_depth : t -> int
  (** High-water mark of {!queue_depth} over the run so far (sampled at
      each enqueue, where the queue is deepest); deterministic. *)

  val reads : t -> int
  val writes : t -> int

  val register_metrics :
    t -> ?labels:(string * string) list -> Spandex_obs.Metrics.t -> unit
  (** Register this channel's queue-depth gauge and read/write counters
      (probes only); [labels] distinguishes banked channels. *)
end

type t

val create : Spandex_sim.Engine.t -> latency:int -> service_interval:int -> t
(** A single shared channel (the classic model).  [service_interval]
    cycles between successive accesses models DRAM bandwidth; 0 means
    unlimited. *)

val create_banked :
  Spandex_sim.Engine.t array -> latency:int -> service_interval:int -> t
(** One channel per element of [engines] — channel [b] schedules its
    completions on [engines.(b)], which must be the engine of the shard
    hosting bank [b]. *)

val channels : t -> Channel.t array
(** The per-bank channels, in bank order ([[| c |]] for {!create}). *)

val channel_of_line : t -> line:int -> Channel.t

val read_line : t -> line:int -> k:(int array -> unit) -> unit
(** Fetch a full line via its channel; [k] receives a fresh copy after
    the access delay. *)

val write_words :
  t -> line:int -> mask:Spandex_util.Mask.t -> values:int array -> unit
(** Commit masked words ([values] in packed order). *)

val peek_word : t -> Spandex_proto.Addr.t -> int
(** Current contents, for oracles/tests; no timing effect. *)

val reads : t -> int
(** Total across channels. *)

val writes : t -> int
(** Total across channels. *)

val queue_depth : t -> int
(** Summed across channels; 0 when bandwidth is unlimited. *)

val register_metrics : t -> Spandex_obs.Metrics.t -> unit
(** Register every channel's series on one registry (single-registry
    runs); banked channels get a [bank] label.  Sharded runs should
    instead register each channel on its own shard's registry via
    {!Channel.register_metrics}. *)
