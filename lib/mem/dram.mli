(** Backing memory.

    Holds the authoritative copy of every line not owned on chip.  Reads
    cost [latency] cycles plus queuing at a fixed service rate; writes
    update state immediately (write latency is off the critical path for
    every protocol studied).  Never-written words read as
    {!Spandex_proto.Linedata.init_word}. *)

type t

val create : Spandex_sim.Engine.t -> latency:int -> service_interval:int -> t
(** [service_interval] cycles between successive accesses models DRAM
    bandwidth; 0 means unlimited. *)

val read_line : t -> line:int -> k:(int array -> unit) -> unit
(** Fetch a full line; [k] receives a fresh copy after the access delay. *)

val write_words :
  t -> line:int -> mask:Spandex_util.Mask.t -> values:int array -> unit
(** Commit masked words ([values] in packed order). *)

val peek_word : t -> Spandex_proto.Addr.t -> int
(** Current contents, for oracles/tests; no timing effect. *)

val reads : t -> int
val writes : t -> int

val queue_depth : t -> int
(** Accesses currently queued behind the service-rate limiter (how far
    the next-free slot runs ahead of the clock, in service slots); 0 when
    bandwidth is unlimited. *)

val register_metrics : t -> Spandex_obs.Metrics.t -> unit
(** Register queue-depth gauge and read/write counters on a metrics
    registry (probes only; sampling is driven by the engine). *)
