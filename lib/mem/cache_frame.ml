type 'a entry = { line : int; mutable meta : 'a; mutable last_use : int }

type 'a t = {
  sets : int;
  ways : int;
  table : (int, 'a entry) Hashtbl.t;
  set_members : (int, 'a entry list) Hashtbl.t;
  mutable tick : int;
}

let create ~sets ~ways =
  assert (sets > 0 && ways > 0);
  {
    sets;
    ways;
    table = Hashtbl.create (sets * ways);
    set_members = Hashtbl.create sets;
    tick = 0;
  }

let size_lines ~bytes ~ways =
  let lines = bytes / Spandex_proto.Addr.line_bytes in
  assert (lines mod ways = 0);
  (lines / ways, ways)

let set_of t line = line mod t.sets
let members t set = Option.value ~default:[] (Hashtbl.find_opt t.set_members set)

let find t ~line =
  match Hashtbl.find t.table line with
  | e -> Some e.meta
  | exception Not_found -> None

let find_exn t ~line = (Hashtbl.find t.table line).meta
let mem t ~line = Hashtbl.mem t.table line

let touch t ~line =
  match Hashtbl.find t.table line with
  | e ->
    t.tick <- t.tick + 1;
    e.last_use <- t.tick
  | exception Not_found -> ()

let remove t ~line =
  match Hashtbl.find_opt t.table line with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.table line;
    let set = set_of t line in
    Hashtbl.replace t.set_members set
      (List.filter (fun (e' : 'a entry) -> e' != e) (members t set))

type 'a insert_result = Inserted | Evicted of int * 'a | No_room

let insert t ~line meta ~can_evict =
  assert (not (Hashtbl.mem t.table line));
  let set = set_of t line in
  let current = members t set in
  let do_insert () =
    t.tick <- t.tick + 1;
    let e = { line; meta; last_use = t.tick } in
    Hashtbl.add t.table line e;
    Hashtbl.replace t.set_members set (e :: members t set)
  in
  if List.length current < t.ways then begin
    do_insert ();
    Inserted
  end
  else begin
    (* LRU victim among evictable lines. *)
    let victim =
      List.fold_left
        (fun best (e : 'a entry) ->
          if not (can_evict ~line:e.line e.meta) then best
          else
            match best with
            | Some (b : 'a entry) when b.last_use <= e.last_use -> best
            | _ -> Some e)
        None current
    in
    match victim with
    | None -> No_room
    | Some v ->
      remove t ~line:v.line;
      do_insert ();
      Evicted (v.line, v.meta)
  end

let lru_matching t ~set_line ~f =
  let set = set_of t set_line in
  let best =
    List.fold_left
      (fun best (e : 'a entry) ->
        if not (f ~line:e.line e.meta) then best
        else
          match best with
          | Some (b : 'a entry) when b.last_use <= e.last_use -> best
          | _ -> Some e)
      None (members t set)
  in
  Option.map (fun (e : 'a entry) -> (e.line, e.meta)) best

let iter t ~f = Hashtbl.iter (fun line e -> f ~line e.meta) t.table
let fold t ~init ~f = Hashtbl.fold (fun line e acc -> f acc ~line e.meta) t.table init
let count t = Hashtbl.length t.table
let capacity t = t.sets * t.ways
