module Mask = Spandex_util.Mask
module Addr = Spandex_proto.Addr

type entry = {
  mutable line : int;
  mutable mask : Mask.t;
  values : int array;
  mutable age : int;
}

(* Placeholder for vacated free-list slots; never read. *)
let dummy_entry = { line = -1; mask = Mask.empty; values = [||]; age = 0 }

(* FIFO order lives in a circular buffer of the (bounded) capacity instead
   of an append-to-tail list: push/take are O(1) with no list cells, and
   the store cycle is embedded in the entry rather than a side table. *)
type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t;
  order : int array;  (** circular, [head .. head+len) are live lines. *)
  mutable head : int;
  mutable len : int;
  free : entry array;  (** recycled entry records ([release]). *)
  mutable free_n : int;
}

let create ~capacity =
  assert (capacity > 0);
  {
    capacity;
    table = Hashtbl.create capacity;
    order = Array.make capacity 0;
    head = 0;
    len = 0;
    free = Array.make capacity dummy_entry;
    free_n = 0;
  }

let slot t i = (t.head + i) mod t.capacity

let push t ~addr:{ Addr.line; word } ~value ~now =
  match Hashtbl.find t.table line with
  | e ->
    e.mask <- Mask.add e.mask word;
    e.values.(word) <- value;
    e.age <- now;
    `Coalesced
  | exception Not_found ->
    if t.len >= t.capacity then `Full
    else begin
      let e =
        if t.free_n > 0 then begin
          t.free_n <- t.free_n - 1;
          let e = t.free.(t.free_n) in
          t.free.(t.free_n) <- dummy_entry;
          (* Consumers must only read masked words, but zero the rest so a
             reused entry is indistinguishable from a fresh one. *)
          Array.fill e.values 0 (Array.length e.values) 0;
          e.line <- line;
          e.mask <- Mask.singleton word;
          e.age <- now;
          e
        end
        else
          {
            line;
            mask = Mask.singleton word;
            values = Array.make Addr.words_per_line 0;
            age = now;
          }
      in
      e.values.(word) <- value;
      Hashtbl.add t.table line e;
      t.order.(slot t t.len) <- line;
      t.len <- t.len + 1;
      `New
    end

let is_empty t = t.len = 0
let count t = t.len

let remove t ~line =
  if Hashtbl.mem t.table line then begin
    Hashtbl.remove t.table line;
    (* Compact the ring around the removed line, preserving FIFO order. *)
    let found = ref false in
    for i = 0 to t.len - 1 do
      if !found then t.order.(slot t (i - 1)) <- t.order.(slot t i)
      else if t.order.(slot t i) = line then found := true
    done;
    if !found then t.len <- t.len - 1
  end

let take_oldest_exn t =
  if t.len = 0 then raise Not_found
  else begin
    let line = t.order.(t.head) in
    let e = Hashtbl.find t.table line in
    Hashtbl.remove t.table line;
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1;
    e
  end

let take_oldest t = match take_oldest_exn t with
  | e -> Some e
  | exception Not_found -> None

let peek_oldest_exn t =
  if t.len = 0 then raise Not_found
  else Hashtbl.find t.table t.order.(t.head)

let peek_oldest t =
  match peek_oldest_exn t with
  | e -> Some e
  | exception Not_found -> None

let release t e =
  if t.free_n < Array.length t.free
     && Array.length e.values = Addr.words_per_line
  then begin
    t.free.(t.free_n) <- e;
    t.free_n <- t.free_n + 1
  end

let find t ~line =
  match Hashtbl.find t.table line with
  | e -> Some e
  | exception Not_found -> None

let mem t ~line = Hashtbl.mem t.table line

let age t ~line =
  match Hashtbl.find t.table line with
  | e -> e.age
  | exception Not_found -> 0

let forward t ~addr:{ Addr.line; word } =
  match Hashtbl.find t.table line with
  | e when Mask.mem e.mask word -> Some e.values.(word)
  | _ | (exception Not_found) -> None

let iter t ~f =
  for i = 0 to t.len - 1 do
    f (Hashtbl.find t.table t.order.(slot t i))
  done
