(** Translation-unit response collection (paper §III-D).

    Spandex tracks ownership at word granularity, so the words of one
    multi-word (or line-granularity) request may be satisfied by different
    responders: the LLC for words valid there, and one direct response per
    remote owner for the rest.  "A device that can issue multi-word requests
    must be able to handle multiple partial word granularity responses" —
    this collector accumulates them and reports completion, including words
    that were Nacked (a forwarded ReqV that raced past an ownership change)
    so the device's TU can retry or convert the request. *)

type t

type result = {
  mutable data_mask : Spandex_util.Mask.t;
      (** words that arrived with data. *)
  values : int array;  (** full-line array, live where [data_mask]. *)
  mutable acked : Spandex_util.Mask.t;
      (** words acknowledged without data. *)
  mutable nacked : Spandex_util.Mask.t;
      (** demanded words that were Nacked.  Fields are mutable because
          {!absorb} accumulates in place; callers treat a completed result
          as settled. *)
}

val create : demand:Spandex_util.Mask.t -> t
(** Completion requires every word of [demand] to be covered by data, an
    ack, or a Nack. *)

val absorb : t -> Spandex_proto.Msg.t -> result option
(** Feed one response.  Returns [Some result] exactly once, when the demand
    is fully covered.  Responses covering extra (opportunistic) words are
    folded in. *)

val peek : t -> result
(** Current accumulation, before completion. *)
