(** The Spandex LLC: the paper's primary contribution (§III-B).

    The LLC is the coherence point for all attached device caches.  It
    tracks line-level Invalid/Valid/Shared state plus a per-word owned bit
    and per-word owner ID, serializes all writes, and handles each request
    per Table III:

    - ReqV: respond with the words valid at the LLC; forward demanded
      remotely-owned words to their owners (no state change, Fig. 1c).
    - ReqS: option (1) — grant Shared state, revoking MESI owners via a
      blocking forwarded ReqS — when the line is Shared or a MESI device
      owns target words; option (3) — treat as ReqO+data — otherwise.
    - ReqWT: update LLC data immediately; invalidate sharers (blocking) if
      Shared; forward an ownership-revoking ReqO to prior owners (Fig. 1d).
    - ReqO / ReqO+data: transfer ownership without blocking — the owner ID
      is updated immediately and the request is forwarded to the prior
      owner, who responds directly to the requestor (Fig. 1a).
    - ReqWT+data: perform the (possibly atomic) update at the LLC; requires
      a blocking RvkO write-back when the data is remotely owned (Fig. 1b).
    - ReqWB: accept write-backs from the registered owner; acknowledge and
      drop write-backs from non-owners (racing transfers).

    Allocation is at line granularity; fills and evictions go through a
    pluggable {!Backing.t}, which also delivers parent recalls when the
    engine is used as the hierarchical GPU L2. *)

type device_kind = Kind_mesi | Kind_denovo | Kind_gpu
(** Attached-device classification, used by the [Reqs_auto] policy
    (paper §III-B: option (1) "if the target data is in S state or owned in
    a MESI core", option (3) otherwise). *)

type reqs_policy =
  | Reqs_auto
      (** the paper's evaluated policy: option (1) when the line is Shared
          or a MESI device owns target words, option (3) otherwise. *)
  | Reqs_shared  (** always option (1): grant Shared state. *)
  | Reqs_valid
      (** always option (2): answer like a ReqV; the requestor must
          self-invalidate after the read, precluding reuse. *)
  | Reqs_owned  (** always option (3): grant ownership with the data. *)

type config = {
  llc_id : Spandex_proto.Msg.device_id;  (** first bank endpoint. *)
  banks : int;
      (** lines interleave across network endpoints
          [llc_id .. llc_id + banks - 1], giving the LLC bank-level request
          parallelism (Table VI: 16-bank NUCA). *)
  sets : int;
  ways : int;
  access_latency : int;  (** cycles between arrival and response dispatch. *)
  kind_of : Spandex_proto.Msg.device_id -> device_kind;
  reqs_policy : reqs_policy;
      (** how writer-invalidated reads are served (§III-B, Table III rows
          ReqS (1)/(2)/(3)); [Reqs_auto] reproduces the paper's evaluation. *)
}

type t

val create :
  ?bank_engines:Spandex_sim.Engine.t array ->
  ?bank_backings:Backing.t array ->
  Spandex_sim.Engine.t ->
  Spandex_net.Network.t ->
  Backing.t ->
  config ->
  t
(** Registers the LLC on the network under [llc_id .. llc_id + banks - 1]
    and installs the recall handler on the backing(s).  Each bank is a
    self-contained component: its own engine, backing, probe-txn
    allocator, stats and trace names — [bank_engines] / [bank_backings]
    (length [banks]) place bank [b] on [bank_engines.(b)] with backing
    [bank_backings.(b)], which is how the PDES partition spreads banks
    across shards.  When omitted, every bank uses the positional
    [engine] / [Backing.t] (the classic single-shard wiring). *)

val bank_count : t -> int

val quiescent : t -> bool
val bank_quiescent : t -> int -> bool
(** Bank [b]'s lines are settled and its backing is quiescent. *)

val describe_pending : t -> string
val bank_describe_pending : t -> int -> string

val bank_stats : t -> int -> Spandex_util.Stats.t
(** Bank [b]'s counters; merge all banks under one prefix to reproduce
    the aggregate ({!Spandex_util.Stats.merge_into} sums). *)

val trace_sample : t -> time:int -> unit
(** Record every bank's pending/blocked occupancy counters
    (["llc.pending"] / ["llc.blocked"], dev = the bank endpoint); no-op
    when disabled. *)

val bank_trace_sample : t -> int -> time:int -> unit
(** One bank's occupancy counters, on that bank's shard trace — the
    sharded sampler entry point (sampling must stay shard-local). *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register every bank's probes on one registry (single-registry runs):
    resident-line gauges, pending/blocked transaction-pressure gauges,
    and the reply-cache replay counter — labelled [device] and [bank]
    (the flat LLC and the hierarchical GPU L2 are both this module). *)

val bank_register_metrics :
  t -> device:string -> int -> Spandex_obs.Metrics.t -> unit
(** One bank's probes, for that bank's shard registry. *)

(** {2 Introspection for tests} *)

val line_state : t -> line:int -> Spandex_proto.State.llc_line option
(** [None] when the line is not resident. *)

val owner_of : t -> Spandex_proto.Addr.t -> Spandex_proto.Msg.device_id option
val owned_mask : t -> line:int -> Spandex_util.Mask.t
val sharers : t -> line:int -> Spandex_proto.Msg.device_id list
val peek_word : t -> Spandex_proto.Addr.t -> int option
(** LLC's current copy of a word ([None] if not resident); stale for words
    owned remotely. *)

val resident_lines : t -> int

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state (resident
    lines, pending operations, blocked queues, replay cache) for the model
    checker's visited-state cache. *)
