module Mask = Spandex_util.Mask
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Linedata = Spandex_proto.Linedata

type result = {
  mutable data_mask : Mask.t;
  values : int array;
  mutable acked : Mask.t;
  mutable nacked : Mask.t;
}

type t = { demand : Mask.t; mutable acc : result; mutable done_ : bool }

let create ~demand =
  {
    demand;
    acc =
      {
        data_mask = Mask.empty;
        values = Array.make Addr.words_per_line 0;
        acked = Mask.empty;
        nacked = Mask.empty;
      };
    done_ = false;
  }

let covered acc = Mask.union acc.data_mask (Mask.union acc.acked acc.nacked)

let absorb t (msg : Msg.t) =
  assert (not t.done_);
  let acc = t.acc in
  (match msg.Msg.kind with
  | Msg.Rsp Msg.Nack -> acc.nacked <- Mask.union acc.nacked msg.Msg.mask
  | Msg.Rsp _ -> (
    match msg.Msg.payload with
    | Msg.Data values | Msg.Data_pooled values ->
      Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:acc.values;
      acc.data_mask <- Mask.union acc.data_mask msg.Msg.mask
    | Msg.No_data -> acc.acked <- Mask.union acc.acked msg.Msg.mask)
  | Msg.Req _ | Msg.Probe _ -> invalid_arg "Tu.absorb: not a response");
  if Mask.subset t.demand (covered t.acc) then begin
    t.done_ <- true;
    Some t.acc
  end
  else None

let peek t = t.acc
