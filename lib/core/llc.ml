module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module State = Spandex_proto.State
module Amo = Spandex_proto.Amo
module Linedata = Spandex_proto.Linedata
module Txn = Spandex_proto.Txn
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame

type device_kind = Kind_mesi | Kind_denovo | Kind_gpu
type reqs_policy = Reqs_auto | Reqs_shared | Reqs_valid | Reqs_owned

type config = {
  llc_id : Msg.device_id;  (* first bank endpoint. *)
  banks : int;  (* lines interleave across bank endpoints
                   [llc_id .. llc_id + banks - 1] (Table VI: NUCA banks). *)
  sets : int;
  ways : int;
  access_latency : int;
  kind_of : Msg.device_id -> device_kind;
  reqs_policy : reqs_policy;
}

let bank_of cfg line = cfg.llc_id + (line mod cfg.banks)

(* A revocation in flight: [owner] was sent a RvkO / forwarded ReqS covering
   some words; each word is satisfied by a RspRvkO or a crossing ReqWB.
   Tracking is per word because an owner may answer in parts — e.g. a word
   that was mid-RMW at the owner is revoked only after the RMW commits. *)
type awaited = { aw_owner : int; mutable aw_remaining : Mask.t }

let aw_satisfied a = Spandex_util.Mask.is_empty a.aw_remaining

type pending =
  | Fetching of { excl : bool }
  | Upgrading
  | Collecting_acks of { mutable acks_left : int; resume : unit -> unit }
  | Awaiting_wb of { awaited : awaited list; resume : unit -> unit }
  | Purging of {
      mutable acks_left : int;
      awaited : awaited list;
      resume : unit -> unit;
    }

type recall_req = {
  rkind : Backing.recall_kind;
  rk : (int array * bool) option -> unit;
}

type meta = {
  mutable lstate : State.llc_line;
  mutable owned : Mask.t;
  owner : int array;  (* per-word owner id; meaningful where [owned] set. *)
  data : int array;  (* authoritative for words not owned remotely. *)
  mutable sharers : Msg.device_id list;
  mutable dirty : bool;
  mutable backing_excl : bool;
  mutable pending : pending option;
  mutable blocked : Msg.t list;  (* FIFO: oldest first. *)
  mutable recalls : recall_req list;
}

(* The address-interleaved banked tag array lives in
   {!Spandex_mem.Banked_frame} (shared with the MESI directory): bank [b]
   holds the lines ≡ b (mod banks), conflict sets and LRU order are
   unchanged, and each bank owns a disjoint slice of the tag/state
   arrays — the PDES partition boundary. *)
module Frames = Spandex_mem.Banked_frame

(* Everything mutable a bank touches while processing a request lives in
   its own [bank] record: engine (the bank's shard engine under PDES),
   backing, probe-txn allocator, stats, trace sink and interned names.
   The handlers derive the bank from the line ([line mod banks]), so a
   bank never reads or writes another bank's state — which is exactly
   what lets the PDES partition place each bank on its own shard. *)
type bank = {
  bk_engine : Engine.t;
  bk_backing : Backing.t;
  bk_txns : Txn.allocator;  (* probe ids: drawn in bank arrival order. *)
  bk_stats : Stats.t;
  bk_req_keys : Stats.key array;  (* "req.<kind>" by [Msg.req_kind_index]. *)
  bk_trace : Trace.t;
  bk_n_replay : int;  (* interned trace names (0 on a disabled sink). *)
  bk_n_recall : int;
  bk_n_pending : int;
  bk_n_blocked : int;
}

type t = {
  cfg : config;
  frame : meta Frames.t;
  banks : bank array;
  (* At-most-once reply cache, armed only under fault injection.  For
     request kinds whose processing is not idempotent (ownership+data
     grants, LLC-performed atomics), the responses sent for a txn are
     recorded; a duplicate or retried arrival of the same txn replays them
     instead of reprocessing — so a retried ReqWTdata cannot apply its AMO
     twice and a retried ReqOdata gets the original data grant back.  One
     table per bank (a line maps to exactly one bank, so a txn's entries
     live in one table): the reply cache partitions along the same
     boundary as the tag array. *)
  replay : (int, Msg.t list ref) Hashtbl.t array option;
}

let bank t line = t.banks.(line mod t.cfg.banks)

let fresh_meta () =
  {
    lstate = State.L_I;
    owned = Mask.empty;
    owner = Array.make Addr.words_per_line (-1);
    data = Array.make Addr.words_per_line 0;
    sharers = [];
    dirty = false;
    backing_excl = false;
    pending = None;
    blocked = [];
    recalls = [];
  }

(* ----- messaging helpers -------------------------------------------------- *)

(* State transitions happen at arrival (the serialization point); outgoing
   messages are charged the LLC access latency.  The sending bank is read
   off the message source (all outgoing messages carry [bank_of cfg line]
   as [src]), so the send lands on that bank's engine. *)
let send t (msg : Msg.t) =
  let bk = t.banks.(msg.Msg.src - t.cfg.llc_id) in
  Engine.send_later bk.bk_engine ~delay:t.cfg.access_latency msg

let respond t (req : Msg.t) ~kind ~mask ?payload () =
  if not (Mask.is_empty mask) then begin
    let msg =
      Msg.make ~txn:req.Msg.txn ~kind:(Msg.Rsp kind) ~line:req.Msg.line ~mask
        ?payload ~src:(bank_of t.cfg req.Msg.line) ~dst:req.Msg.requestor ()
    in
    (match t.replay with
    | Some tables -> (
      match
        Hashtbl.find_opt tables.(req.Msg.line mod t.cfg.banks) req.Msg.txn
      with
      | Some sent -> sent := msg :: !sent
      | None -> ())
    | None -> ());
    send t msg
  end

let respond_data t (req : Msg.t) meta ~kind ~mask =
  if not (Mask.is_empty mask) then
    let payload = Msg.pooled_pack ~mask ~full:meta.data in
    respond t req ~kind ~mask ~payload ()

let forward t (req : Msg.t) ~kind ~dst ~mask ?demand ?amo () =
  let msg =
    Msg.make ~txn:req.Msg.txn ~kind:(Msg.Req kind) ~line:req.Msg.line ~mask
      ?demand ~src:(bank_of t.cfg req.Msg.line) ~dst
      ~requestor:req.Msg.requestor ~fwd:true ?amo ()
  in
  (* Forwards are never recorded for replay.  The response they solicit
     (a data transfer or a data-less RspO grant) rides the lossless
     channel, so it cannot need recovery — and a model-checker
     counterexample shows that re-sending a forward is unsound: a
     duplicate of the original request can arrive while the registration
     still matches, and the re-sent revocation then races into a later
     registration epoch at the old owner, which relinquishes words the
     directory still registers to it. *)
  send t msg

let probe t ~kind ~dst ~line ~mask =
  send t
    (Msg.make
       ~txn:(Txn.next (bank t line).bk_txns)
       ~kind:(Msg.Probe kind) ~line ~mask ~src:(bank_of t.cfg line) ~dst ())

(* ----- per-word owner bookkeeping ----------------------------------------- *)

(* Group the remotely-owned words of [mask] by owner. *)
let owner_groups meta mask =
  Mask.fold (Mask.inter mask meta.owned) ~init:[] ~f:(fun acc w ->
      let o = meta.owner.(w) in
      match List.assoc_opt o acc with
      | Some m -> (o, Mask.add m w) :: List.remove_assoc o acc
      | None -> (o, Mask.singleton w) :: acc)

(* Every word of the line owned by [o]. *)
let full_holding meta o =
  Mask.fold meta.owned ~init:Mask.empty ~f:(fun acc w ->
      if meta.owner.(w) = o then Mask.add acc w else acc)

let grant_ownership meta ~mask ~to_ =
  Mask.iter mask ~f:(fun w -> meta.owner.(w) <- to_);
  meta.owned <- Mask.union meta.owned mask

let clear_ownership meta ~mask = meta.owned <- Mask.diff meta.owned mask

let words_owned_by meta ~mask ~owner =
  Mask.fold (Mask.inter mask meta.owned) ~init:Mask.empty ~f:(fun acc w ->
      if meta.owner.(w) = owner then Mask.add acc w else acc)

(* ----- request classification --------------------------------------------- *)

let needs_excl = function
  | Msg.ReqV -> false
  | Msg.ReqS | Msg.ReqWT | Msg.ReqO | Msg.ReqWTdata | Msg.ReqOdata | Msg.ReqWB
    -> true

let payload_values (msg : Msg.t) =
  match msg.Msg.payload with
  | Msg.Data v | Msg.Data_pooled v -> v
  | Msg.No_data -> invalid_arg "Llc: request missing data payload"

(* ----- main handler -------------------------------------------------------- *)

let rec handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Req k -> handle_req t msg k
  | Msg.Rsp k -> handle_rsp t msg k
  | Msg.Probe _ -> failwith "Llc: received a probe"

and handle_req t (msg : Msg.t) kind =
  let bk = bank t msg.Msg.line in
  Stats.bump bk.bk_stats bk.bk_req_keys.(Msg.req_kind_index kind);
  match Frames.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found ->
    if kind = Msg.ReqWB then begin
      (* A write-back racing with a completed purge: the sender is no longer
         the owner (Table III: "ReqWB from non-owner"). Acknowledge, drop. *)
      Stats.incr bk.bk_stats "wb_stale";
      respond t msg ~kind:Msg.RspWB ~mask:msg.Msg.mask ()
    end
    else begin
      Stats.incr bk.bk_stats "miss";
      allocate_and_fetch t msg kind
    end
  | meta -> (
    Frames.touch t.frame ~line:msg.Msg.line;
    match meta.pending with
    | Some pending -> (
      match kind with
      | Msg.ReqWB when wb_satisfies pending msg.Msg.src ->
        apply_wb t meta msg;
        respond t msg ~kind:Msg.RspWB ~mask:msg.Msg.mask ();
        mark_satisfied t msg.Msg.line meta pending msg.Msg.src
          ~mask:msg.Msg.mask
      | _ ->
        Stats.incr bk.bk_stats "blocked";
        Msg.keep msg;
        meta.blocked <- meta.blocked @ [ msg ])
    | None ->
      if needs_excl kind && not meta.backing_excl then begin
        Stats.incr bk.bk_stats "backing_upgrade";
        meta.pending <- Some Upgrading;
        Msg.keep msg;
        meta.blocked <- meta.blocked @ [ msg ];
        bk.bk_backing.Backing.acquire ~line:msg.Msg.line ~excl:true
          ~k:(fun data ~excl ->
            assert excl;
            (* A parent Inv may have raced past this upgrade (§III-C): our
               copy is stale and the grant carries the fresh line.  Only
               internally-owned words keep their local truth. *)
            (match data with
            | Some d ->
              Mask.iter (Mask.diff Addr.full_mask meta.owned) ~f:(fun w ->
                  meta.data.(w) <- d.(w))
            | None -> ());
            meta.backing_excl <- true;
            meta.pending <- None;
            after_pending t msg.Msg.line)
      end
      else begin
        Stats.incr bk.bk_stats "hit";
        dispatch t meta msg kind
      end)

and dispatch t meta (msg : Msg.t) kind =
  match kind with
  | Msg.ReqV -> do_reqv t meta msg
  | Msg.ReqS -> do_reqs t meta msg
  | Msg.ReqWT -> with_no_sharers t meta msg (fun () -> do_reqwt t meta msg)
  | Msg.ReqO -> with_no_sharers t meta msg (fun () -> do_reqo t meta msg)
  | Msg.ReqWTdata ->
    with_no_sharers t meta msg (fun () -> do_reqwtdata t meta msg)
  | Msg.ReqOdata ->
    with_no_sharers t meta msg (fun () ->
        do_grant_with_data t meta msg ~rsp:Msg.RspOdata)
  | Msg.ReqWB ->
    apply_wb t meta msg;
    respond t msg ~kind:Msg.RspWB ~mask:msg.Msg.mask ()

(* Writes to Shared data must invalidate every sharer first and block while
   acks are collected (paper §III-B). The writer itself keeps its copy. *)
and with_no_sharers t meta (msg : Msg.t) next =
  if meta.lstate <> State.L_S then next ()
  else begin
    let targets = List.filter (fun d -> d <> msg.Msg.requestor) meta.sharers in
    meta.sharers <- [];
    meta.lstate <- State.L_V;
    if targets = [] then next ()
    else begin
      Stats.incr (bank t msg.Msg.line).bk_stats "inv_bursts";
      (* [next] captures [msg] and runs after the ack collection. *)
      Msg.keep msg;
      meta.pending <-
        Some
          (Collecting_acks
             {
               acks_left = List.length targets;
               resume =
                 (fun () ->
                   next ();
                   after_pending t msg.Msg.line);
             });
      List.iter
        (fun d ->
          Stats.incr (bank t msg.Msg.line).bk_stats "inv_sent";
          probe t ~kind:Msg.Inv ~dst:d ~line:msg.Msg.line ~mask:Addr.full_mask)
        targets
    end
  end

(* ReqV: no LLC state change, no global ordering (Fig. 1c).  Forwards to
   an owner cover every owned word of the request — not only the demanded
   ones — because the responder "may include any available up-to-date data
   in the line" (Table II); only demanded words are Nacked on a miss. *)
and do_reqv t meta (msg : Msg.t) =
  let local = Mask.diff msg.Msg.mask meta.owned in
  respond_data t msg meta ~kind:Msg.RspV ~mask:local;
  let fwd_words = Mask.inter msg.Msg.mask meta.owned in
  List.iter
    (fun (o, sub) ->
      let demanded = Mask.inter sub msg.Msg.demand in
      if o = msg.Msg.requestor then begin
        (* The requestor was granted ownership (e.g. by another of its
           contexts) after issuing this ReqV; the LLC has no data to give.
           Nack so its TU retries and hits locally. *)
        if not (Mask.is_empty demanded) then begin
          Stats.incr (bank t msg.Msg.line).bk_stats "reqv_self_nack";
          respond t msg ~kind:Msg.Nack ~mask:demanded ()
        end
      end
      else begin
        Stats.incr (bank t msg.Msg.line).bk_stats "fwd_reqv";
        forward t msg ~kind:Msg.ReqV ~dst:o ~mask:sub ~demand:demanded ()
      end)
    (owner_groups meta fwd_words)

(* ReqS: option (1) when the line is Shared or a MESI device owns target
   words, option (3) otherwise (§III-B "Supporting Shared State"). *)
and do_reqs t meta (msg : Msg.t) =
  let bk = bank t msg.Msg.line in
  let owned_in = Mask.inter msg.Msg.mask meta.owned in
  let groups = owner_groups meta owned_in in
  let any_mesi_owner =
    List.exists (fun (o, _) -> t.cfg.kind_of o = Kind_mesi) groups
  in
  let choose_opt1 =
    match t.cfg.reqs_policy with
    | Reqs_auto -> meta.lstate = State.L_S || any_mesi_owner
    | Reqs_shared -> true
    | Reqs_valid | Reqs_owned -> false
  in
  if t.cfg.reqs_policy = Reqs_valid then begin
    (* Option (2): serve like a ReqV; the requestor's TU downgrades the
       data to Invalid after the read, precluding any reuse (§III-B). *)
    Stats.incr bk.bk_stats "reqs_opt2";
    do_reqv t meta msg
  end
  else if choose_opt1 then begin
    Stats.incr bk.bk_stats "reqs_opt1";
    respond_data t msg meta ~kind:Msg.RspS ~mask:(Mask.diff msg.Msg.mask meta.owned);
    if Mask.is_empty owned_in then begin
      meta.lstate <- State.L_S;
      if not (List.mem msg.Msg.requestor meta.sharers) then
        meta.sharers <- msg.Msg.requestor :: meta.sharers
    end
    else begin
      (* Blocking: the owners must write back before Shared state is
         granted (Table III: ReqS (1) on O data).  Words still registered
         to the requestor itself are special: the request crossed the
         requestor's own write-back (it discarded the line after a partial
         downgrade), so forwarding to it would wedge behind its pending
         read.  Await the crossing ReqWB instead — it is the data carrier
         — and serve those words from the merged LLC data at resume. *)
      let self = words_owned_by meta ~mask:owned_in ~owner:msg.Msg.requestor in
      if not (Mask.is_empty self) then Stats.incr bk.bk_stats "reqs_self_wb";
      let fwd_groups =
        List.filter (fun (o, _) -> o <> msg.Msg.requestor) groups
      in
      let awaited =
        List.map
          (fun (o, sub) -> { aw_owner = o; aw_remaining = sub })
          groups
      in
      let mesi_owners =
        List.filter_map
          (fun (o, _) -> if t.cfg.kind_of o = Kind_mesi then Some o else None)
          fwd_groups
      in
      Msg.keep msg;
      meta.pending <-
        Some
          (Awaiting_wb
             {
               awaited;
               resume =
                 (fun () ->
                   meta.lstate <- State.L_S;
                   List.iter
                     (fun d ->
                       if not (List.mem d meta.sharers) then
                         meta.sharers <- d :: meta.sharers)
                     (msg.Msg.requestor :: mesi_owners);
                   respond_data t msg meta ~kind:Msg.RspS ~mask:self;
                   after_pending t msg.Msg.line);
             });
      List.iter
        (fun (o, sub) ->
          Stats.incr bk.bk_stats "fwd_reqs";
          forward t msg ~kind:Msg.ReqS ~dst:o ~mask:sub ())
        fwd_groups
    end
  end
  else begin
    Stats.incr bk.bk_stats "reqs_opt3";
    with_no_sharers t meta msg (fun () ->
        do_grant_with_data t meta msg ~rsp:Msg.RspOdata)
  end

(* ReqWT: the LLC is updated and ownership revoked immediately; prior owners
   are told to downgrade via a forwarded ReqO and respond directly to the
   requestor (Fig. 1d).  No blocking state, no data responses. *)
and do_reqwt t meta (msg : Msg.t) =
  let values = payload_values msg in
  let self = words_owned_by meta ~mask:msg.Msg.mask ~owner:msg.Msg.requestor in
  let groups =
    List.filter
      (fun (o, _) -> o <> msg.Msg.requestor)
      (owner_groups meta msg.Msg.mask)
  in
  Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
  meta.dirty <- true;
  clear_ownership meta ~mask:msg.Msg.mask;
  let fwd_mask =
    List.fold_left (fun acc (_, sub) -> Mask.union acc sub) Mask.empty groups
  in
  List.iter
    (fun (o, sub) ->
      Stats.incr (bank t msg.Msg.line).bk_stats "fwd_wt_revoke";
      forward t msg ~kind:Msg.ReqO ~dst:o ~mask:sub ())
    groups;
  respond t msg ~kind:Msg.RspWT
    ~mask:(Mask.union (Mask.diff msg.Msg.mask fwd_mask) self)
    ()

(* ReqO: non-blocking ownership transfer (Fig. 1a). *)
and do_reqo t meta (msg : Msg.t) =
  let self = words_owned_by meta ~mask:msg.Msg.mask ~owner:msg.Msg.requestor in
  let groups =
    List.filter
      (fun (o, _) -> o <> msg.Msg.requestor)
      (owner_groups meta msg.Msg.mask)
  in
  let fwd_mask =
    List.fold_left (fun acc (_, sub) -> Mask.union acc sub) Mask.empty groups
  in
  grant_ownership meta ~mask:msg.Msg.mask ~to_:msg.Msg.requestor;
  List.iter
    (fun (o, sub) ->
      Stats.incr (bank t msg.Msg.line).bk_stats "fwd_reqo";
      forward t msg ~kind:Msg.ReqO ~dst:o ~mask:sub ())
    groups;
  respond t msg ~kind:Msg.RspO
    ~mask:(Mask.union (Mask.diff msg.Msg.mask fwd_mask) self)
    ()

(* ReqO+data (and ReqS option (3)): data for words valid at the LLC, a
   forwarded request for remotely-owned words; ownership moves immediately. *)
and do_grant_with_data t meta (msg : Msg.t) ~rsp =
  let local = Mask.diff msg.Msg.mask meta.owned in
  let self = words_owned_by meta ~mask:msg.Msg.mask ~owner:msg.Msg.requestor in
  if not (Mask.is_empty self) then
    (* The requestor already owns these words; its copy is the truth, so no
       data can be supplied.  This only arises from defensive retries. *)
    respond t msg ~kind:Msg.RspO ~mask:self ();
  let groups =
    List.filter
      (fun (o, _) -> o <> msg.Msg.requestor)
      (owner_groups meta msg.Msg.mask)
  in
  respond_data t msg meta ~kind:rsp ~mask:local;
  List.iter
    (fun (o, sub) ->
      Stats.incr (bank t msg.Msg.line).bk_stats "fwd_reqodata";
      forward t msg ~kind:Msg.ReqOdata ~dst:o ~mask:sub ())
    groups;
  grant_ownership meta ~mask:msg.Msg.mask ~to_:msg.Msg.requestor

(* ReqWT+data: the update happens at the LLC, which must first collect the
   up-to-date data from any remote owner via a blocking RvkO (Fig. 1b). *)
and do_reqwtdata t meta (msg : Msg.t) =
  let groups = owner_groups meta msg.Msg.mask in
  if groups = [] then apply_wtdata t meta msg
  else begin
    Msg.keep msg;
    let awaited =
      List.map
        (fun (o, _) ->
          (* The owner writes back everything it holds in the line. *)
          { aw_owner = o; aw_remaining = full_holding meta o })
        groups
    in
    meta.pending <-
      Some
        (Awaiting_wb
           {
             awaited;
             resume =
               (fun () ->
                 apply_wtdata t meta msg;
                 after_pending t msg.Msg.line);
           });
    List.iter
      (fun aw ->
        Stats.incr (bank t msg.Msg.line).bk_stats "rvko_sent";
        probe t ~kind:Msg.RvkO ~dst:aw.aw_owner ~line:msg.Msg.line
          ~mask:aw.aw_remaining)
      awaited
  end

and apply_wtdata t meta (msg : Msg.t) =
  assert (Mask.is_empty (Mask.inter msg.Msg.mask meta.owned));
  let returned =
    match msg.Msg.amo with
    | Some amo ->
      assert (Mask.count msg.Msg.mask = 1);
      let w = Mask.lowest msg.Msg.mask in
      let next, ret = Amo.apply amo meta.data.(w) in
      meta.data.(w) <- next;
      Msg.pooled_single ret
    | None ->
      let values = payload_values msg in
      let old = Msg.pooled_pack ~mask:msg.Msg.mask ~full:meta.data in
      Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
      old
  in
  meta.dirty <- true;
  respond t msg ~kind:Msg.RspWTdata ~mask:msg.Msg.mask ~payload:returned ()

(* ReqWB: accept data for words still owned by the sender, drop the rest. *)
and apply_wb t meta (msg : Msg.t) =
  let live = words_owned_by meta ~mask:msg.Msg.mask ~owner:msg.Msg.src in
  if Mask.is_empty live then Stats.incr (bank t msg.Msg.line).bk_stats "wb_stale"
  else begin
    Stats.incr (bank t msg.Msg.line).bk_stats "wb_live";
    let values = payload_values msg in
    Linedata.iter ~mask:msg.Msg.mask ~values ~f:(fun ~word ~value ->
        if Mask.mem live word then meta.data.(word) <- value);
    clear_ownership meta ~mask:live;
    meta.dirty <- true
  end

(* ----- pending-state resolution ------------------------------------------- *)

and wb_satisfies pending src =
  let in_awaited awaited =
    List.exists (fun a -> a.aw_owner = src && not (aw_satisfied a)) awaited
  in
  match pending with
  | Awaiting_wb { awaited; _ } -> in_awaited awaited
  | Purging { awaited; _ } -> in_awaited awaited
  | Fetching _ | Upgrading | Collecting_acks _ -> false

and mark_satisfied _t line meta pending src ~mask =
  let satisfy awaited =
    List.iter
      (fun a ->
        if a.aw_owner = src then
          a.aw_remaining <- Mask.diff a.aw_remaining mask)
      awaited;
    List.for_all aw_satisfied awaited
  in
  match pending with
  | Awaiting_wb { awaited; resume } ->
    if satisfy awaited then begin
      meta.pending <- None;
      resume ()
    end
  | Purging ({ awaited; resume; _ } as p) ->
    if satisfy awaited && p.acks_left = 0 then begin
      meta.pending <- None;
      resume ()
    end
  | Fetching _ | Upgrading | Collecting_acks _ ->
    ignore line;
    assert false

and handle_rsp t (msg : Msg.t) kind =
  match Frames.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found ->
    Stats.incr (bank t msg.Msg.line).bk_stats "rsp_orphan"
  | meta -> (
    match (kind, meta.pending) with
    | Msg.Ack, Some (Collecting_acks c) ->
      c.acks_left <- c.acks_left - 1;
      if c.acks_left = 0 then begin
        meta.pending <- None;
        c.resume ()
      end
    | Msg.Ack, Some (Purging p) ->
      p.acks_left <- p.acks_left - 1;
      if p.acks_left = 0 && List.for_all aw_satisfied p.awaited
      then begin
        meta.pending <- None;
        p.resume ()
      end
    | Msg.RspRvkO, Some ((Awaiting_wb { awaited; _ } | Purging { awaited; _ }) as p)
      -> (
      match
        List.find_opt
          (fun a -> a.aw_owner = msg.Msg.src && not (aw_satisfied a))
          awaited
      with
      | None -> Stats.incr (bank t msg.Msg.line).bk_stats "rvko_dup"
      | Some a ->
        (match msg.Msg.payload with
        | Msg.Data values | Msg.Data_pooled values ->
          Linedata.iter ~mask:msg.Msg.mask ~values ~f:(fun ~word ~value ->
              if Mask.mem meta.owned word && meta.owner.(word) = msg.Msg.src
              then meta.data.(word) <- value);
          meta.dirty <- true
        | Msg.No_data ->
          (* The data travelled in a crossing ReqWB already merged. *)
          ());
        clear_ownership meta
          ~mask:
            (words_owned_by meta
               ~mask:(Mask.inter a.aw_remaining msg.Msg.mask)
               ~owner:a.aw_owner);
        mark_satisfied t msg.Msg.line meta p msg.Msg.src ~mask:msg.Msg.mask)
    | (Msg.Ack | Msg.RspRvkO), _ ->
      Stats.incr (bank t msg.Msg.line).bk_stats "rsp_orphan"
    | _ -> failwith "Llc: unexpected response kind")

(* After a pending state clears: serve queued recalls first, then replay
   blocked requests in arrival order. *)
and after_pending t line =
  match Frames.find_exn t.frame ~line with
  | exception Not_found -> ()
  | meta ->
    if meta.pending = None then begin
      match meta.recalls with
      | r :: rest ->
        meta.recalls <- rest;
        start_recall t line meta r
      | [] -> (
        match meta.blocked with
        | [] -> ()
        | msgs ->
          meta.blocked <- [];
          List.iter (fun m -> handle t m) msgs)
    end

(* ----- allocation, eviction, recall ---------------------------------------- *)

and can_evict ~line:_ meta =
  meta.pending = None && meta.blocked = [] && meta.recalls = []
  && Mask.is_empty meta.owned && meta.sharers = []

and allocate_and_fetch t (msg : Msg.t) kind =
  let line = msg.Msg.line in
  let bk = bank t line in
  let meta = fresh_meta () in
  let insert () = Frames.insert t.frame ~line meta ~can_evict in
  let start_fetch () =
    meta.pending <- Some (Fetching { excl = needs_excl kind });
    Msg.keep msg;
    meta.blocked <- [ msg ];
    bk.bk_backing.Backing.acquire ~line ~excl:(needs_excl kind)
      ~k:(fun data ~excl ->
        (match data with
        | Some d -> Array.blit d 0 meta.data 0 Addr.words_per_line
        | None -> failwith "Llc: fetch returned no data");
        meta.lstate <- State.L_V;
        meta.backing_excl <- excl;
        meta.pending <- None;
        after_pending t line)
  in
  match insert () with
  | Cache_frame.Inserted ->
    Stats.incr bk.bk_stats "fill";
    start_fetch ()
  | Cache_frame.Evicted (vline, vmeta) ->
    Stats.incr bk.bk_stats "evict";
    (* [vline] shares the bank with [line]: evictions stay in-set. *)
    bk.bk_backing.Backing.writeback ~line:vline ~data:(Array.copy vmeta.data)
      ~dirty:vmeta.dirty
      ~k:(fun () -> ());
    Stats.incr bk.bk_stats "fill";
    start_fetch ()
  | Cache_frame.No_room -> begin
    (* Every clean way is pinned: purge a busy-but-stable victim in the same
       set (revoking owners / invalidating sharers), then retry. *)
    match find_purge_victim t line with
    | Some (vline, vmeta) ->
      Stats.incr bk.bk_stats "evict_purge";
      Msg.keep msg;
      purge t vline vmeta ~keep_line:false ~inv_sharers:true
        ~k:(fun (data, dirty) ->
          bk.bk_backing.Backing.writeback ~line:vline ~data ~dirty
            ~k:(fun () -> ());
          handle t msg)
    | None ->
      Stats.incr bk.bk_stats "alloc_stall";
      Msg.keep msg;
      Engine.schedule bk.bk_engine ~delay:8 (fun () -> handle t msg)
  end

and find_purge_victim t line =
  Frames.lru_matching t.frame ~set_line:line ~f:(fun ~line:_ m ->
      m.pending = None && m.recalls = [])

(* Bring [line] to an unowned (and, when [inv_sharers], unshared) state; [k]
   receives the merged data and dirtiness.  With [keep_line:false] the line
   is removed and its queued requests are replayed (they will re-fetch). *)
and purge t line meta ~keep_line ~inv_sharers ~k =
  let sharers = if inv_sharers then meta.sharers else [] in
  if inv_sharers then begin
    meta.sharers <- [];
    if meta.lstate = State.L_S then meta.lstate <- State.L_V
  end;
  let groups = owner_groups meta meta.owned in
  let awaited =
    List.map
      (fun (o, sub) -> { aw_owner = o; aw_remaining = sub })
      groups
  in
  let finish () =
    let data = Array.copy meta.data in
    let dirty = meta.dirty in
    if keep_line then begin
      k (data, dirty);
      after_pending t line
    end
    else begin
      let queued = meta.blocked in
      meta.blocked <- [];
      let recalls = meta.recalls in
      meta.recalls <- [];
      Frames.remove t.frame ~line;
      k (data, dirty);
      (* A parent recall queued behind this purge finds the line gone; the
         backing answers it from the write-back record the purge's own
         surrender (k) just created. *)
      List.iter (fun r -> r.rk None) recalls;
      List.iter (fun m -> handle t m) queued
    end
  in
  if sharers = [] && awaited = [] then finish ()
  else begin
    meta.pending <-
      Some
        (Purging { acks_left = List.length sharers; awaited; resume = finish });
    List.iter
      (fun d ->
        Stats.incr (bank t line).bk_stats "inv_sent";
        probe t ~kind:Msg.Inv ~dst:d ~line ~mask:Addr.full_mask)
      sharers;
    List.iter
      (fun a ->
        Stats.incr (bank t line).bk_stats "rvko_sent";
        probe t ~kind:Msg.RvkO ~dst:a.aw_owner ~line ~mask:a.aw_remaining)
      awaited
  end

(* Parent recall (hierarchical GPU L2 use only). *)
and start_recall t line meta (r : recall_req) =
  Stats.incr (bank t line).bk_stats "recall";
  match r.rkind with
  | Backing.Recall_shared ->
    (* Surrender internal ownership but keep a (now clean, shared) copy;
       internal read-only sharers remain valid. *)
    purge t line meta ~keep_line:true ~inv_sharers:false
      ~k:(fun (data, dirty) ->
        meta.backing_excl <- false;
        meta.dirty <- false;
        r.rk (Some (data, dirty)))
  | Backing.Recall_excl ->
    purge t line meta ~keep_line:false ~inv_sharers:true
      ~k:(fun (data, dirty) -> r.rk (Some (data, dirty)))

and handle_recall t ~line ~kind ~k =
  let bk = bank t line in
  match Frames.find_exn t.frame ~line with
  | exception Not_found ->
    (* arg -1: the line is absent (answered from a write-back record). *)
    if Trace.on bk.bk_trace then
      Trace.instant bk.bk_trace ~time:(Engine.now bk.bk_engine)
        ~dev:(bank_of t.cfg line) ~name:bk.bk_n_recall ~txn:(-1) ~arg:(-1);
    k None
  | meta ->
    let r = { rkind = kind; rk = k } in
    (* arg encodes the pending state the recall found: 0 idle, then the
       1-based constructor index of [pending]. *)
    if Trace.on bk.bk_trace then
      Trace.instant bk.bk_trace ~time:(Engine.now bk.bk_engine)
        ~dev:(bank_of t.cfg line) ~name:bk.bk_n_recall ~txn:(-1)
        ~arg:
          (match meta.pending with
          | None -> 0
          | Some (Fetching _) -> 1
          | Some Upgrading -> 2
          | Some (Collecting_acks _) -> 3
          | Some (Awaiting_wb _) -> 4
          | Some (Purging _) -> 5);
    if meta.pending = None then start_recall t line meta r
    else meta.recalls <- meta.recalls @ [ r ]

(* ----- construction and introspection -------------------------------------- *)

(* Requests whose processing must be exactly-once (see [replay] above).
   Everything that mutates ownership registration or LLC data is guarded:
   reprocessing a stale duplicate of a completed ReqO would re-register
   the old requestor (rolling back a later transfer and routing future
   forwards to an L1 that already relinquished the words), and a
   duplicate racing its own forward would take the retry-recovery
   "requestor already registered" path and grant ownership while the
   forwarded revocation is still in flight to the old owner.  ReqWB is
   ownership-checked in [apply_wb], but that check is epoch-blind: if the
   writer re-acquires the same words after the write-back completed, a
   stale retry of that ReqWB (sent because the RspWB ack was lost) passes
   the check and deregisters words the L1 still holds dirty.  Only ReqV
   reads without mutating and stays naturally idempotent. *)
let replay_guarded = function
  | Msg.ReqOdata | Msg.ReqWTdata | Msg.ReqS | Msg.ReqWT | Msg.ReqO
  | Msg.ReqWB ->
    true
  | Msg.ReqV -> false

(* Network-facing entry: the at-most-once filter sits here so internal
   re-dispatches (unblocking, allocation retries) bypass it. *)
let arrival t (msg : Msg.t) =
  match (t.replay, msg.Msg.kind) with
  | Some tables, Msg.Req k when replay_guarded k -> (
    let bk = bank t msg.Msg.line in
    let table = tables.(msg.Msg.line mod t.cfg.banks) in
    match Hashtbl.find_opt table msg.Msg.txn with
    | Some sent ->
      (* Duplicate or retried request: replay what we already answered
         (possibly nothing yet, if the original is still blocked). *)
      Stats.incr bk.bk_stats "replayed";
      if Trace.on bk.bk_trace then
        Trace.instant bk.bk_trace ~time:(Engine.now bk.bk_engine)
          ~dev:(bank_of t.cfg msg.Msg.line) ~name:bk.bk_n_replay
          ~txn:msg.Msg.txn ~arg:(List.length !sent);
      List.iter (fun m -> send t m) (List.rev !sent)
    | None ->
      Hashtbl.add table msg.Msg.txn (ref []);
      handle t msg)
  | _ -> handle t msg

(* Fold over one bank's resident lines, with global line numbers. *)
let fold_bank t b ~init ~f = Frames.fold_bank t.frame b ~init ~f

let create ?bank_engines ?bank_backings engine net backing (cfg : config) =
  let engine_of b =
    match bank_engines with Some a -> a.(b) | None -> engine
  in
  let backing_of b =
    match bank_backings with Some a -> a.(b) | None -> backing
  in
  (match bank_engines with
  | Some a when Array.length a <> cfg.banks ->
    invalid_arg "Llc.create: bank_engines length must equal banks"
  | _ -> ());
  (match bank_backings with
  | Some a when Array.length a <> cfg.banks ->
    invalid_arg "Llc.create: bank_backings length must equal banks"
  | _ -> ());
  let make_bank b =
    let stats = Stats.create () in
    let e = engine_of b in
    let trace = Engine.trace e in
    {
      bk_engine = e;
      bk_backing = backing_of b;
      bk_txns = Txn.allocator ~id:(cfg.llc_id + b);
      bk_stats = stats;
      bk_req_keys =
        (let keys = Array.make 7 (Stats.key stats "req.ReqV") in
         List.iter
           (fun k ->
             keys.(Msg.req_kind_index k) <-
               Stats.key stats ("req." ^ Msg.req_kind_name k))
           Msg.all_req_kinds;
         keys);
      bk_trace = trace;
      bk_n_replay = Trace.name trace "llc.replay";
      bk_n_recall = Trace.name trace "llc.recall";
      bk_n_pending = Trace.name trace "llc.pending";
      bk_n_blocked = Trace.name trace "llc.blocked";
    }
  in
  let t =
    {
      cfg;
      frame = Frames.create ~banks:cfg.banks ~sets:cfg.sets ~ways:cfg.ways;
      banks = Array.init cfg.banks make_bank;
      replay =
        (if Network.faults_enabled net then
           Some (Array.init cfg.banks (fun _ -> Hashtbl.create 256))
         else None);
    }
  in
  for b = 0 to cfg.banks - 1 do
    Network.register net ~id:(cfg.llc_id + b) (fun msg -> arrival t msg)
  done;
  (* One recall dispatcher per distinct backing; it routes by line, so
     installing the same closure on a backing shared between banks (the
     hierarchical GPU L2 over one MESI client) is harmless. *)
  Array.iter
    (fun bk ->
      bk.bk_backing.Backing.set_recall_handler (fun ~line ~kind ~k ->
          handle_recall t ~line ~kind ~k))
    t.banks;
  Array.iteri
    (fun b bk ->
      Engine.register_pending_source bk.bk_engine (fun () ->
          fold_bank t b ~init:[] ~f:(fun acc ~line m ->
              let item what =
                {
                  Engine.pw_device =
                    Printf.sprintf "llc.%d" (bank_of t.cfg line);
                  pw_txn = -1;
                  pw_line = line;
                  pw_what = what;
                }
              in
              let acc =
                match m.pending with
                | None -> acc
                | Some (Fetching _) -> item "fetching from backing" :: acc
                | Some Upgrading -> item "upgrading at backing" :: acc
                | Some (Collecting_acks c) ->
                  item (Printf.sprintf "collecting %d inv ack(s)" c.acks_left)
                  :: acc
                | Some (Awaiting_wb _) -> item "awaiting write-back" :: acc
                | Some (Purging _) -> item "purging" :: acc
              in
              if m.blocked = [] then acc
              else
                item
                  (Printf.sprintf "%d blocked request(s)"
                     (List.length m.blocked))
                :: acc)))
    t.banks;
  t

let bank_count t = t.cfg.banks

(* Per-bank occupancy counters, sampled from the bank's own shard: dev is
   the bank's network endpoint, the sink is the bank's shard trace. *)
let bank_trace_sample t b ~time =
  let bk = t.banks.(b) in
  let pending, blocked =
    fold_bank t b ~init:(0, 0) ~f:(fun (p, bl) ~line:_ m ->
        ((if m.pending = None then p else p + 1), bl + List.length m.blocked))
  in
  Trace.counter bk.bk_trace ~time ~dev:(t.cfg.llc_id + b) ~name:bk.bk_n_pending
    ~value:pending;
  Trace.counter bk.bk_trace ~time ~dev:(t.cfg.llc_id + b) ~name:bk.bk_n_blocked
    ~value:blocked

let trace_sample t ~time =
  for b = 0 to t.cfg.banks - 1 do
    bank_trace_sample t b ~time
  done

(* Metrics probes, registered per bank so each bank's series lives on its
   own shard's registry: resident-line occupancy (the bank-sharding lever
   the ROADMAP names), transaction pressure (lines with a pending op /
   requests parked behind one), and the at-most-once reply cache's replay
   counter.  [device] distinguishes the flat LLC from the hierarchical
   GPU L2, which are both this module. *)
let bank_register_metrics t ~device b reg =
  let module Metrics = Spandex_obs.Metrics in
  let bk = t.banks.(b) in
  let labels = [ ("bank", string_of_int b); ("device", device) ] in
  Metrics.gauge reg ~name:"spandex_llc_bank_lines" ~labels
    ~help:"resident lines per LLC bank" (fun () ->
      Frames.count_bank t.frame b);
  Metrics.gauge reg ~name:"spandex_llc_pending" ~labels
    ~help:"lines with an in-flight home transaction" (fun () ->
      fold_bank t b ~init:0 ~f:(fun p ~line:_ m ->
          if m.pending = None then p else p + 1));
  Metrics.gauge reg ~name:"spandex_llc_blocked" ~labels
    ~help:"requests parked behind a pending line" (fun () ->
      fold_bank t b ~init:0 ~f:(fun bl ~line:_ m ->
          bl + List.length m.blocked));
  Metrics.counter reg ~name:"spandex_llc_replayed_total" ~labels
    ~help:"duplicate requests answered from the reply cache (fault runs)"
    (fun () -> Stats.get bk.bk_stats "replayed")

let register_metrics t ~device reg =
  for b = 0 to t.cfg.banks - 1 do
    bank_register_metrics t ~device b reg
  done

let bank_quiescent t b =
  fold_bank t b ~init:true ~f:(fun acc ~line:_ m ->
      acc && m.pending = None && m.blocked = [] && m.recalls = [])
  && t.banks.(b).bk_backing.Backing.quiescent ()

let quiescent t =
  let ok = ref true in
  for b = 0 to t.cfg.banks - 1 do
    ok := !ok && bank_quiescent t b
  done;
  !ok

let bank_describe_pending t b =
  let busy =
    fold_bank t b ~init:[] ~f:(fun acc ~line m ->
        match m.pending with
        | None -> acc
        | Some p ->
          let what =
            match p with
            | Fetching _ -> "fetching"
            | Upgrading -> "upgrading"
            | Collecting_acks c -> Printf.sprintf "acks(%d)" c.acks_left
            | Awaiting_wb { awaited; _ } ->
              Printf.sprintf "wb(%d)"
                (List.length
                   (List.filter (fun a -> not (aw_satisfied a)) awaited))
            | Purging _ -> "purging"
          in
          Printf.sprintf "line %d %s (+%d blocked)" line what
            (List.length m.blocked)
          :: acc)
  in
  if busy = [] then Printf.sprintf "llc.%d: idle" (t.cfg.llc_id + b)
  else Printf.sprintf "llc.%d: %s" (t.cfg.llc_id + b) (String.concat "; " busy)

let describe_pending t =
  String.concat "; "
    (List.init t.cfg.banks (fun b -> bank_describe_pending t b))

let bank_stats t b = t.banks.(b).bk_stats

let line_state t ~line =
  Option.map (fun m -> m.lstate) (Frames.find t.frame ~line)

let owner_of t { Addr.line; word } =
  match Frames.find t.frame ~line with
  | Some m when Mask.mem m.owned word -> Some m.owner.(word)
  | Some _ | None -> None

let owned_mask t ~line =
  match Frames.find t.frame ~line with
  | Some m -> m.owned
  | None -> Mask.empty

let sharers t ~line =
  match Frames.find t.frame ~line with Some m -> m.sharers | None -> []

let peek_word t { Addr.line; word } =
  Option.map (fun m -> m.data.(word)) (Frames.find t.frame ~line)

let resident_lines t = Frames.count t.frame

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fp_awaited fp awaited =
  let aws =
    List.map (fun a -> (a.aw_owner, (a.aw_remaining :> int))) awaited
    |> List.sort compare
  in
  Fp.list fp
    (fun fp (o, m) ->
      Fp.int fp o;
      Fp.int fp m)
    aws

let fp_pending fp = function
  | None -> Fp.tag fp "-"
  | Some (Fetching { excl }) ->
    Fp.tag fp "F";
    Fp.bool fp excl
  | Some Upgrading -> Fp.tag fp "U"
  | Some (Collecting_acks c) ->
    Fp.tag fp "C";
    Fp.int fp c.acks_left
  | Some (Awaiting_wb { awaited; _ }) ->
    Fp.tag fp "W";
    fp_awaited fp awaited
  | Some (Purging { acks_left; awaited; _ }) ->
    Fp.tag fp "P";
    Fp.int fp acks_left;
    fp_awaited fp awaited

let fingerprint t fp =
  Fp.tag fp "llc";
  let lines =
    Frames.fold t.frame ~init:[] ~f:(fun acc ~line m -> (line, m) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, m) ->
      Fp.int fp line;
      Fp.int fp
        (match m.lstate with State.L_I -> 0 | State.L_V -> 1 | State.L_S -> 2);
      Fp.int fp (m.owned :> int);
      Mask.iter m.owned ~f:(fun w -> Fp.int fp m.owner.(w));
      (* Words owned remotely are stale here; exclude them so the
         fingerprint tracks only authoritative data. *)
      Fp.masked_array fp
        ~mask:(Mask.diff Addr.full_mask m.owned)
        m.data;
      Fp.list fp Fp.int (List.sort compare m.sharers);
      Fp.bool fp m.dirty;
      Fp.bool fp m.backing_excl;
      fp_pending fp m.pending;
      Fp.list fp Msg.fingerprint m.blocked;
      Fp.int fp (List.length m.recalls))
    lines;
  match t.replay with
  | None -> ()
  | Some tables ->
    let entries =
      Array.fold_left
        (fun acc table ->
          Hashtbl.fold (fun txn msgs acc -> (txn, !msgs) :: acc) table acc)
        [] tables
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Fp.list fp
      (fun fp (txn, msgs) ->
        Fp.txn fp txn;
        Fp.list fp Msg.fingerprint msgs)
      entries
