module Engine = Spandex_sim.Engine
module Stats = Spandex_util.Stats

type ctx_state = Ready | Waiting | Finished

type context = {
  ops : Ops.t array;
  mutable pc : int;
  mutable state : ctx_state;
  (* Preallocated continuations (wired in [create]): issuing an op is the
     per-op hot path, so completion callbacks must not allocate a fresh
     closure each time.  [wake] reads [pc]/[state] at call time, so one
     closure per context is enough. *)
  mutable wake : unit -> unit;
  mutable wake_int : int -> unit;  (* [wake] discarding a loaded value. *)
}

type t = {
  engine : Engine.t;
  port : Port.t;
  barriers : Barrier.t array;
  check_log : Check_log.t;
  core_id : int;
  clock : int;
  contexts : context array;
  stats : Stats.t;
  (* Interned per-op counters: issue runs once per simulated op. *)
  k_ops : Stats.key;
  k_loads : Stats.key;
  k_stores : Stats.key;
  k_rmws : Stats.key;
  k_acquires : Stats.key;
  k_releases : Stats.key;
  k_barriers : Stats.key;
  k_compute : Stats.key;
  mutable rr : int;
  mutable issue_armed : bool;
  mutable next_slot : int;
  mutable done_count : int;
  mutable issue_thunk : unit -> unit;  (* preallocated issue-slot event. *)
}

let next_ready t =
  let n = Array.length t.contexts in
  let rec scan i =
    if i = n then None
    else
      let idx = (t.rr + i) mod n in
      if t.contexts.(idx).state = Ready then Some idx else scan (i + 1)
  in
  scan 0

let rec arm t =
  if not t.issue_armed then begin
    t.issue_armed <- true;
    let now = Engine.now t.engine in
    let time = if t.next_slot > now then t.next_slot else now in
    Engine.at t.engine ~time t.issue_thunk
  end

and issue t =
  match next_ready t with
  | None -> ()
  | Some idx ->
    let ctx = t.contexts.(idx) in
    t.rr <- (idx + 1) mod Array.length t.contexts;
    t.next_slot <- Engine.now t.engine + t.clock;
    let op = ctx.ops.(ctx.pc) in
    ctx.pc <- ctx.pc + 1;
    Stats.bump t.stats t.k_ops;
    let wake = ctx.wake in
    ctx.state <- Waiting;
    (match op with
    | Ops.Load a ->
      Stats.bump t.stats t.k_loads;
      t.port.Port.load a ~k:ctx.wake_int
    | Ops.Check (a, expected) ->
      Stats.bump t.stats t.k_loads;
      t.port.Port.load a ~k:(fun actual ->
          Check_log.incr_checks t.check_log;
          if actual <> expected then
            Check_log.record t.check_log
              {
                Check_log.core = t.core_id;
                addr = a;
                expected;
                actual;
                cycle = Engine.now t.engine;
              };
          wake ())
    | Ops.Store (a, value) ->
      Stats.bump t.stats t.k_stores;
      t.port.Port.store a ~value ~k:wake
    | Ops.Rmw (a, amo) ->
      Stats.bump t.stats t.k_rmws;
      t.port.Port.rmw a amo ~k:ctx.wake_int
    | Ops.Acquire ->
      Stats.bump t.stats t.k_acquires;
      t.port.Port.acquire ~k:wake
    | Ops.Acquire_region region ->
      Stats.bump t.stats t.k_acquires;
      t.port.Port.acquire_region ~region ~k:wake
    | Ops.Release ->
      Stats.bump t.stats t.k_releases;
      t.port.Port.release ~k:wake
    | Ops.Barrier b ->
      Stats.bump t.stats t.k_barriers;
      let barrier = t.barriers.(b) in
      t.port.Port.release ~k:(fun () ->
          Barrier.arrive barrier ~k:(fun () -> t.port.Port.acquire ~k:wake))
    | Ops.Barrier_region (b, region) ->
      Stats.bump t.stats t.k_barriers;
      let barrier = t.barriers.(b) in
      t.port.Port.release ~k:(fun () ->
          Barrier.arrive barrier ~k:(fun () ->
              t.port.Port.acquire_region ~region ~k:wake))
    | Ops.Compute n ->
      Stats.bump t.stats t.k_compute;
      Engine.schedule t.engine ~delay:(n * t.clock) wake);
    (* Keep issuing while other contexts are ready. *)
    arm t

let create engine ~port ~barriers ~check_log ~core_id ~clock ~programs =
  assert (clock >= 1);
  let contexts =
    Array.map
      (fun ops ->
        {
          ops;
          pc = 0;
          state = (if Array.length ops = 0 then Finished else Ready);
          wake = ignore;
          wake_int = ignore;
        })
      programs
  in
  let done_count =
    Array.fold_left
      (fun acc c -> if c.state = Finished then acc + 1 else acc)
      0 contexts
  in
  let stats = Stats.create () in
  let t =
    {
      engine;
      port;
      barriers;
      check_log;
      core_id;
      clock;
      contexts;
      stats;
      k_ops = Stats.key stats "ops";
      k_loads = Stats.key stats "loads";
      k_stores = Stats.key stats "stores";
      k_rmws = Stats.key stats "rmws";
      k_acquires = Stats.key stats "acquires";
      k_releases = Stats.key stats "releases";
      k_barriers = Stats.key stats "barriers";
      k_compute = Stats.key stats "compute";
      rr = 0;
      issue_armed = false;
      next_slot = 0;
      done_count;
      issue_thunk = ignore;
    }
  in
  Array.iter
    (fun ctx ->
      let wake () =
        if ctx.pc >= Array.length ctx.ops then begin
          ctx.state <- Finished;
          t.done_count <- t.done_count + 1
        end
        else ctx.state <- Ready;
        arm t
      in
      ctx.wake <- wake;
      ctx.wake_int <- (fun _v -> wake ()))
    t.contexts;
  t.issue_thunk <-
    (fun () ->
      t.issue_armed <- false;
      issue t);
  t

let start t =
  Engine.register_pending_source t.engine (fun () ->
      Array.to_list t.contexts
      |> List.mapi (fun i c ->
             if c.state <> Waiting then None
             else
               let op = c.ops.(c.pc - 1) in
               Some
                 {
                   Engine.pw_device = Printf.sprintf "core.%d" t.core_id;
                   pw_txn = -1;
                   pw_line =
                     (match op with
                     | Ops.Load a | Ops.Check (a, _) | Ops.Store (a, _)
                     | Ops.Rmw (a, _) ->
                       a.Spandex_proto.Addr.line
                     | _ -> -1);
                   pw_what =
                     Format.asprintf "ctx%d waiting on %a" i Ops.pp op;
                 })
      |> List.filter_map Fun.id);
  arm t

let finished t =
  t.done_count = Array.length t.contexts && t.port.Port.quiescent ()

let describe_pending t =
  let ctxs =
    Array.to_list t.contexts
    |> List.mapi (fun i c ->
           match c.state with
           | Finished -> None
           | Ready -> Some (Printf.sprintf "ctx%d ready@%d" i c.pc)
           | Waiting ->
             Some
               (Format.asprintf "ctx%d waiting@%d on %a" i (c.pc - 1) Ops.pp
                  c.ops.(c.pc - 1)))
    |> List.filter_map Fun.id
  in
  Printf.sprintf "core %d: %s; port: %s" t.core_id
    (if ctxs = [] then "all ctx done" else String.concat ", " ctxs)
    (t.port.Port.describe_pending ())

let stats t = t.stats
let core_id t = t.core_id

module Fp = Spandex_util.Fingerprint

let fingerprint t fp =
  Fp.tag fp "core";
  Fp.int fp t.core_id;
  Fp.int fp t.rr;
  Fp.int fp t.done_count;
  Fp.bool fp t.issue_armed;
  Array.iter
    (fun c ->
      Fp.int fp c.pc;
      Fp.int fp
        (match c.state with Ready -> 0 | Waiting -> 1 | Finished -> 2))
    t.contexts
