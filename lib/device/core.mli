(** Unified execution-context model for CPUs and GPU compute units.

    A core owns one or more contexts, each running an op array in order.
    One context issues per issue slot ([clock] engine cycles apart),
    rotating round-robin among ready contexts — with a single context this
    is an in-order CPU core with blocking loads; with many it is a GPU CU
    whose warp interleaving hides memory latency (paper §II-B: GPUs are
    "more tolerant to memory latency because of their highly multi-threaded
    and parallel execution").

    Memory operations go through the protocol-specific {!Port.t}.  A
    [Barrier] op performs Release, arrives at the barrier, and performs
    Acquire after wake-up (SC-for-DRF, §III-E). *)

type t

val create :
  Spandex_sim.Engine.t ->
  port:Port.t ->
  barriers:Barrier.t array ->
  check_log:Check_log.t ->
  core_id:int ->
  clock:int ->
  programs:Ops.t array array ->
  t
(** [clock] is engine cycles per issue slot (1 for a 2 GHz CPU core, 3 for
    a 700 MHz GPU CU with the LLC clock at 2 GHz).  [programs] gives one op
    array per context. *)

val start : t -> unit
(** Arm the issue loop; contexts begin executing at the current cycle. *)

val finished : t -> bool
(** All contexts ran to completion and the L1 port is quiescent. *)

val describe_pending : t -> string
val stats : t -> Spandex_util.Stats.t
val core_id : t -> int

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Feed architectural core state (per-context pc and run state, issue
    round-robin cursor) into a fingerprint accumulator. *)
