(** Unified adaptive request-selection policy.

    One predictor replaces what used to be scattered per-protocol knobs
    (a DeNovo-only write-policy variant, a GPU-only adaptive
    special-case): per-line saturating reuse counters drive both the
    ReqWT-vs-ReqO store decision and the ReqV-vs-ReqO+data load decision,
    and the same [spec] builds a policy for a CPU-DeNovo L1 or a
    GPU-attached DeNovo L1.

    Write side (the pre-existing SDA predictor, reproduced bit-for-bit):
    own lines with observed write reuse, write the rest through.  Reuse
    evidence is a store that hits an Owned word, or a store-buffer entry
    forming for a line that was written through within the last
    [wt_window] coalesce windows; an external downgrade decays the
    counter.

    Read side (new, off in the legacy spec): repeated load misses to the
    same line are self-invalidation thrash — Owned words survive acquires
    (paper §II-C), so once a line has missed [read_threshold] times the
    load is promoted to ReqO+data and the fill installs as Owned. *)

type adaptive = {
  write_threshold : int;
      (** stores switch from ReqWT to ReqO once write reuse reaches this. *)
  read_threshold : int;
      (** load misses promote to ReqO+data once the line has missed this
          many times; 0 disables read promotion (the legacy behaviour). *)
  saturation : int;  (** reuse-counter ceiling. *)
  wt_window : int;
      (** re-write recency horizon, in coalesce windows: a new store-buffer
          entry within this window of the line's last write-through counts
          as reuse evidence. *)
}

type spec =
  | Static_own  (** classic DeNovo: ReqO for all stores, ReqV for loads. *)
  | Adaptive of adaptive

val legacy_adaptive : adaptive
(** The SDA predictor: write_threshold 2, saturation 3, wt_window 8,
    read promotion off. *)

val adaptive_writes : spec
(** [Adaptive legacy_adaptive] — what [Config.sda] sweeps. *)

val adaptive_full : spec
(** Write adaptation plus ReqV-vs-ReqO+data load promotion
    (read_threshold 2) — what [Config.saa] sweeps. *)

val name : spec -> string

val make :
  spec -> now:(unit -> int) -> coalesce_window:int -> Policy.t
(** Build a fresh policy instance (predictor tables are per-L1). *)
