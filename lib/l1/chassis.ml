module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Retry = Spandex_util.Retry
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Txn = Spandex_proto.Txn
module Linedata = Spandex_proto.Linedata
module Network = Spandex_net.Network
module Fault = Spandex_net.Fault
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer

type 'o t = {
  engine : Engine.t;
  net : Network.t;
  id : Msg.device_id;
  home_id : Msg.device_id;
  home_banks : int;
  hit_latency : int;
  coalesce_window : int;
  sb_capacity : int;
  txns : Txn.allocator;  (* per-device ids: interleave-independent. *)
  outstanding : 'o Mshr.t;
  sb : Store_buffer.t;
  stats : Stats.t;
  k_load_hit : Stats.key;
  k_load_miss : Stats.key;
  k_load_sb_fwd : Stats.key;
  k_stores : Stats.key;
  retry : Retry.t option;
  trace : Trace.t;
  n_retry : int;
  n_nack : int;
  n_chain : int;
  n_occ_mshr : int;
  n_occ_aux : int;
  mutable flushing : bool;
  mutable drain_armed : bool;
  mutable release_waiters : (unit -> unit) list;
  mutable stalled_stores : (unit -> unit) list;
  mutable drain : unit -> unit;
  mutable writes_pending : unit -> int;
  mutable drain_tick : unit -> unit;
  mutable source_line : 'o -> int;
  mutable source_what : 'o -> string;
}

let create engine net ~id ~home_id ~home_banks ~hit_latency ~coalesce_window
    ~mshrs ~sb_capacity ~level ~aux =
  let stats = Stats.create () in
  let trace = Engine.trace engine in
  let retry =
    Option.map
      (fun f ->
        Retry.create (Fault.retry_config f) ~seed:(0x5EED + id)
          ~schedule:(fun ~delay k -> Engine.schedule engine ~delay k)
          ~stats)
      (Network.fault net)
  in
  let txns = Txn.allocator ~id in
  let t =
    {
      engine;
      net;
      id;
      home_id;
      home_banks;
      hit_latency;
      coalesce_window;
      sb_capacity;
      txns;
      outstanding =
        Mshr.create ~fresh_txn:(fun () -> Txn.next txns) ~capacity:mshrs ();
      sb = Store_buffer.create ~capacity:sb_capacity;
      stats;
      k_load_hit = Stats.key stats "load_hit";
      k_load_miss = Stats.key stats "load_miss";
      k_load_sb_fwd = Stats.key stats "load_sb_fwd";
      k_stores = Stats.key stats "stores";
      retry;
      trace;
      n_retry = Trace.name trace "retry.resend";
      n_nack = Trace.name trace "tu.nack";
      n_chain = Trace.name trace "txn.chain";
      n_occ_mshr = Trace.name trace (Printf.sprintf "%s.%d.mshr" level id);
      n_occ_aux = Trace.name trace (Printf.sprintf "%s.%d.%s" level id aux);
      flushing = false;
      drain_armed = false;
      release_waiters = [];
      stalled_stores = [];
      drain = (fun () -> ());
      writes_pending = (fun () -> 0);
      drain_tick = (fun () -> ());
      source_line = (fun _ -> -1);
      source_what = (fun _ -> "mshr");
    }
  in
  t.drain_tick <-
    (fun () ->
      t.drain_armed <- false;
      t.drain ());
  (* Anything still held here when the event queue drains is a silent
     deadlock; let [Engine.run_all] report it as [Stuck]. *)
  let name = Printf.sprintf "%s.%d" level id in
  Engine.register_pending_source engine (fun () ->
      let acc = ref [] in
      Mshr.iter t.outstanding ~f:(fun ~txn o ->
          acc :=
            {
              Engine.pw_device = name;
              pw_txn = txn;
              pw_line = t.source_line o;
              pw_what = t.source_what o;
            }
            :: !acc);
      Store_buffer.iter t.sb ~f:(fun e ->
          acc :=
            {
              Engine.pw_device = name;
              pw_txn = -1;
              pw_line = e.Store_buffer.line;
              pw_what = "buffered store";
            }
            :: !acc);
      if t.stalled_stores <> [] then
        acc :=
          {
            Engine.pw_device = name;
            pw_txn = -1;
            pw_line = -1;
            pw_what =
              Printf.sprintf "%d stalled store(s)"
                (List.length t.stalled_stores);
          }
          :: !acc;
      !acc);
  t

let fresh_txn t = Txn.next t.txns
let send t msg = Engine.send_later t.engine ~delay:t.hit_latency msg

let request t ~txn ~kind ~line ~mask ?demand ?payload ?amo () =
  let msg =
    Msg.make ~txn ~kind:(Msg.Req kind) ~line ~mask ?demand ?payload ~src:t.id
      ~dst:(t.home_id + (line mod t.home_banks)) ?amo ()
  in
  if Trace.on t.trace then
    Trace.span_begin t.trace ~time:(Engine.now t.engine) ~dev:t.id ~txn
      ~cls:(Msg.req_kind_index kind) ~line;
  Option.iter
    (fun r ->
      let resend =
        if Trace.on t.trace then (fun () ->
            Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.id
              ~name:t.n_retry ~txn ~arg:(Msg.req_kind_index kind);
            Network.send t.net msg)
        else fun () -> Network.send t.net msg
      in
      Retry.arm r ~txn
        ~describe:(Format.asprintf "%a line %d" Msg.pp_kind (Msg.Req kind) line)
        ~resend)
    t.retry;
  send t msg

let retire t ~txn =
  Option.iter (fun r -> Retry.complete r ~txn) t.retry;
  if Trace.on t.trace then
    Trace.span_end t.trace ~time:(Engine.now t.engine) ~dev:t.id ~txn

let free_txn t ~txn =
  Mshr.free t.outstanding ~txn;
  retire t ~txn

let trace_chain t ~txn ~txn' =
  if Trace.on t.trace then
    Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.id ~name:t.n_chain
      ~txn ~arg:txn'

let trace_nack t ~txn ~count =
  if Trace.on t.trace then
    Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.id ~name:t.n_nack
      ~txn ~arg:count

let reply t (msg : Msg.t) ~kind ~dst ~mask ?payload () =
  if not (Mask.is_empty mask) then
    send t
      (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp kind) ~line:msg.Msg.line ~mask
         ?payload ~src:t.id ~dst ())

let reply_data t msg ~kind ~dst ~mask ~values =
  if not (Mask.is_empty mask) then
    reply t msg ~kind ~dst ~mask
      ~payload:(Msg.pooled_pack ~mask ~full:values)
      ()

let entry_ready ?(forced = false) t line =
  if t.flushing || forced || Store_buffer.count t.sb * 2 >= t.sb_capacity then
    true
  else
    let age = Engine.now t.engine - Store_buffer.age t.sb ~line in
    age >= t.coalesce_window

let check_release t =
  if t.flushing && Store_buffer.is_empty t.sb && t.writes_pending () = 0
  then begin
    t.flushing <- false;
    let ws = t.release_waiters in
    t.release_waiters <- [];
    List.iter (fun k -> k ()) ws
  end

let arm_drain t ~delay =
  if not t.drain_armed then begin
    t.drain_armed <- true;
    Engine.schedule t.engine ~delay t.drain_tick
  end

let release t ~k =
  Stats.incr t.stats "release";
  t.flushing <- true;
  t.release_waiters <- k :: t.release_waiters;
  arm_drain t ~delay:0;
  (* Already drained? *)
  Engine.schedule t.engine ~delay:1 (fun () -> check_release t)

let wake_stalled t =
  let stalled = t.stalled_stores in
  t.stalled_stores <- [];
  List.iter (fun retry -> retry ()) stalled

let stall_store t retry =
  Stats.incr t.stats "sb_full_stall";
  t.stalled_stores <- retry :: t.stalled_stores;
  arm_drain t ~delay:1

let trace_sample t ~time ?aux () =
  Trace.counter t.trace ~time ~dev:t.id ~name:t.n_occ_mshr
    ~value:(Mshr.count t.outstanding);
  Trace.counter t.trace ~time ~dev:t.id ~name:t.n_occ_aux
    ~value:(Option.value ~default:(Store_buffer.count t.sb) aux)

(* Metrics probes shared by every protocol built on the chassis: MSHR and
   store-buffer (or protocol-specific [aux]) occupancy gauges plus the
   retry/stall counters.  [device] labels the series — the same display
   name trace tracks use. *)
let register_metrics t ~device ?aux reg =
  let module Metrics = Spandex_obs.Metrics in
  let labels = [ ("device", device) ] in
  Metrics.gauge reg ~name:"spandex_l1_mshr_occupancy" ~labels
    ~help:"MSHR entries in use" (fun () -> Mshr.count t.outstanding);
  (match aux with
  | None ->
    Metrics.gauge reg ~name:"spandex_l1_store_buffer_occupancy" ~labels
      ~help:"store-buffer entries in use" (fun () -> Store_buffer.count t.sb)
  | Some (name, probe) ->
    Metrics.gauge reg ~name ~labels ~help:"protocol-specific occupancy"
      probe);
  Metrics.counter reg ~name:"spandex_l1_sb_full_stalls_total" ~labels
    ~help:"stores stalled on a full store buffer" (fun () ->
      Stats.get t.stats "sb_full_stall");
  Metrics.counter reg ~name:"spandex_l1_retries_total" ~labels
    ~help:"timeout-driven request resends (fault runs)" (fun () ->
      Stats.get t.stats "retry.resend")

let pending_summary t ~describe ~extra =
  let pend = ref [] in
  Mshr.iter t.outstanding ~f:(fun ~txn o -> pend := (txn, describe o) :: !pend);
  List.iter (fun p -> pend := p :: !pend) extra;
  let shown =
    List.filteri (fun i _ -> i < 4) (List.sort compare !pend)
    |> List.map (fun (txn, d) -> Printf.sprintf "txn %d %s" txn d)
  in
  if shown = [] then "" else " [" ^ String.concat "; " shown ^ "]"

let describe_pending t ~name ~describe ~extra =
  Printf.sprintf "%s %d: sb=%d outstanding=%d stalled=%d%s" name t.id
    (Store_buffer.count t.sb)
    (Mshr.count t.outstanding)
    (List.length t.stalled_stores)
    (pending_summary t ~describe ~extra)

let quiescent t =
  Store_buffer.is_empty t.sb
  && Mshr.count t.outstanding = 0
  && t.stalled_stores = []

module Fp = Spandex_util.Fingerprint

(* Canonical encoding of the shared transaction state.  MSHR entries are
   sorted by the protocol's [key] (line + kind, unique for coexisting
   entries) with the raw txn as a tiebreaker, so the fingerprint's txn
   remap is assigned in a content-determined order; store-buffer entries
   sort by line (one entry per line by construction). *)
let fingerprint t fp ~key ~payload =
  Fp.tag fp "ch";
  Fp.bool fp t.flushing;
  Fp.int fp (List.length t.release_waiters);
  Fp.int fp (List.length t.stalled_stores);
  let sbs = ref [] in
  Store_buffer.iter t.sb ~f:(fun e -> sbs := e :: !sbs);
  let sbs =
    List.sort
      (fun a b -> compare a.Store_buffer.line b.Store_buffer.line)
      !sbs
  in
  Fp.int fp (List.length sbs);
  List.iter
    (fun e ->
      Fp.int fp e.Store_buffer.line;
      Fp.int fp (e.Store_buffer.mask :> int);
      Fp.masked_array fp ~mask:e.Store_buffer.mask e.Store_buffer.values)
    sbs;
  let ms = ref [] in
  Mshr.iter t.outstanding ~f:(fun ~txn o -> ms := (txn, o) :: !ms);
  let ms =
    List.sort
      (fun (t1, o1) (t2, o2) ->
        match compare (key o1) (key o2) with 0 -> compare t1 t2 | c -> c)
      !ms
  in
  Fp.int fp (List.length ms);
  List.iter
    (fun (txn, o) ->
      Fp.txn fp txn;
      payload fp o)
    ms
