(** Per-request coherence-policy interface (the Spandex flexibility knob).

    Spandex's central claim is that the *request interface* is flexible: a
    device may issue ReqV, ReqS, ReqWT or ReqO per access (paper §III-A),
    and the right choice depends on the access pattern, not the protocol
    family.  Each L1 protocol implements this interface as a thin module:
    the classifiers pick the request kind for an access, and the hooks feed
    observed coherence events (ownership hits, write-throughs, downgrades)
    back into the policy's predictor state.  Static protocols — MESI,
    GPU coherence, plain DeNovo — use {!static} constant classifications;
    {!Spandex_policy} builds adaptive instances with per-line saturating
    reuse counters (cf. Alsop et al., "A Case for Fine-grain Coherence
    Specialization in Heterogeneous Systems"). *)

type line_state = {
  owned : bool;  (** the demanded word is locally Owned / Modified. *)
  valid : bool;  (** the demanded word holds a locally valid copy. *)
}

val absent : line_state
(** Both false: the common miss-path state. *)

type read_kind =
  | Read_valid  (** ReqV: self-invalidated data, no sharer state at the LLC. *)
  | Read_shared  (** ReqS: writer-invalidated Shared data. *)
  | Read_own  (** ReqO+data: fetch with ownership; survives acquires. *)

type write_kind =
  | Write_through  (** ReqWT: update the LLC, keep nothing locally. *)
  | Write_own  (** ReqO: data-less ownership (every word overwritten). *)
  | Write_own_data  (** ReqO+data: read-for-ownership of the whole line. *)

val req_of_read : read_kind -> Spandex_proto.Msg.req_kind
val req_of_write : write_kind -> Spandex_proto.Msg.req_kind

type t = {
  name : string;
  classify_read : line:int -> line_state -> read_kind;
      (** request-kind selection for a load miss to [line]. *)
  classify_write : line:int -> write_kind;
      (** request-kind selection for a drained store-buffer entry. *)
  on_store_hit_owned : line:int -> unit;
      (** state-transition hook: a store committed into an Owned word. *)
  on_write_through : line:int -> unit;
      (** state-transition hook: a write-through for [line] was issued. *)
  on_downgrade : line:int -> unit;
      (** probe-response hook: an external request downgraded [line]. *)
}

val static : name:string -> read:read_kind -> write:write_kind -> t
(** Constant classification, no predictor state, no-op hooks. *)
