module Msg = Spandex_proto.Msg

type line_state = { owned : bool; valid : bool }

let absent = { owned = false; valid = false }

type read_kind = Read_valid | Read_shared | Read_own
type write_kind = Write_through | Write_own | Write_own_data

let req_of_read = function
  | Read_valid -> Msg.ReqV
  | Read_shared -> Msg.ReqS
  | Read_own -> Msg.ReqOdata

let req_of_write = function
  | Write_through -> Msg.ReqWT
  | Write_own -> Msg.ReqO
  | Write_own_data -> Msg.ReqOdata

type t = {
  name : string;
  classify_read : line:int -> line_state -> read_kind;
  classify_write : line:int -> write_kind;
  on_store_hit_owned : line:int -> unit;
  on_write_through : line:int -> unit;
  on_downgrade : line:int -> unit;
}

let nop ~line:_ = ()

let static ~name ~read ~write =
  {
    name;
    classify_read = (fun ~line:_ _ -> read);
    classify_write = (fun ~line:_ -> write);
    on_store_hit_owned = nop;
    on_write_through = nop;
    on_downgrade = nop;
  }
