(** Shared L1 transaction chassis.

    Every private cache in the model — the two DeNovo-family L1s, the MESI
    L1 and the MESI client L2 shim — shares the same transaction plumbing:
    MSHR allocate/retire, end-to-end retry-timer arming and cancellation,
    trace span begin/end with the interned instant names, store-buffer
    aging and drain scheduling, release flushing, and stalled-store wakeup.
    This module owns that plumbing once; a protocol keeps only its state
    machine (frame contents, outstanding-transaction payloads, external
    request handling) and installs its drain routine and pending-write
    census as hooks.

    The record is exposed: protocols read the shared fields directly and
    the chassis stays a passive toolbox, not an inversion-of-control
    framework.  ['o] is the protocol's outstanding-transaction type. *)

module Stats = Spandex_util.Stats
module Retry = Spandex_util.Retry
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Network = Spandex_net.Network
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer

type 'o t = {
  engine : Engine.t;
  net : Network.t;
  id : Msg.device_id;
  home_id : Msg.device_id;  (** LLC / directory base id. *)
  home_banks : int;
  hit_latency : int;
  coalesce_window : int;
  sb_capacity : int;
  txns : Spandex_proto.Txn.allocator;
      (** per-device txn-id source, shared with [outstanding]; ids depend
          only on this device's allocation order (PDES-safe). *)
  outstanding : 'o Mshr.t;
  sb : Store_buffer.t;
  stats : Stats.t;
  (* Interned counters for the per-op fast paths common to all L1s. *)
  k_load_hit : Stats.key;
  k_load_miss : Stats.key;
  k_load_sb_fwd : Stats.key;
  k_stores : Stats.key;
  (* End-to-end request retries; armed only when the network injects
     faults, so fault-free runs are bit-identical to the reliable model. *)
  retry : Retry.t option;
  trace : Trace.t;
  n_retry : int;  (** interned trace names (0 on a disabled sink). *)
  n_nack : int;
  n_chain : int;
  n_occ_mshr : int;
  n_occ_aux : int;
  mutable flushing : bool;
  mutable drain_armed : bool;
  mutable release_waiters : (unit -> unit) list;
  mutable stalled_stores : (unit -> unit) list;
  mutable drain : unit -> unit;
      (** installed by the protocol; invoked by the armed drain tick. *)
  mutable writes_pending : unit -> int;
      (** installed by the protocol; gates release completion. *)
  mutable drain_tick : unit -> unit;
      (** preallocated tick closure so {!arm_drain} allocates nothing. *)
  mutable source_line : 'o -> int;
      (** installed by the protocol: line an outstanding entry targets,
          for {!Engine.Stuck} reports ([-1] when unknown). *)
  mutable source_what : 'o -> string;
      (** installed by the protocol: short kind of an outstanding entry. *)
}

val create :
  Engine.t ->
  Network.t ->
  id:Msg.device_id ->
  home_id:Msg.device_id ->
  home_banks:int ->
  hit_latency:int ->
  coalesce_window:int ->
  mshrs:int ->
  sb_capacity:int ->
  level:string ->
  aux:string ->
  'o t
(** [level]/[aux] name the occupancy trace counters
    (["<level>.<id>.mshr"], ["<level>.<id>.<aux>"]).  Does not register a
    network handler: the protocol owns message dispatch. *)

val fresh_txn : 'o t -> int
(** Draw a transaction id from the device's allocator — for transactions
    tracked outside the MSHR file (write-back records). *)

val send : 'o t -> Msg.t -> unit
(** Inject after the L1's hit latency. *)

val request :
  'o t ->
  txn:int ->
  kind:Msg.req_kind ->
  line:int ->
  mask:Spandex_util.Mask.t ->
  ?demand:Spandex_util.Mask.t ->
  ?payload:Msg.payload ->
  ?amo:Spandex_proto.Amo.t ->
  unit ->
  unit
(** Build and send a request to the line's home bank, opening its trace
    span and arming the retry timer (when faults are on). *)

val retire : 'o t -> txn:int -> unit
(** Cancel the retry timer and close the trace span — for transactions
    tracked outside the MSHR file (write-back records). *)

val free_txn : 'o t -> txn:int -> unit
(** Free the MSHR entry, then {!retire}. *)

val trace_chain : 'o t -> txn:int -> txn':int -> unit
(** Link a protocol-level follow-up transaction for [explain]. *)

val trace_nack : 'o t -> txn:int -> count:int -> unit
(** Record a Nacked collection (count of nacked words). *)

val reply :
  'o t ->
  Msg.t ->
  kind:Msg.rsp_kind ->
  dst:Msg.device_id ->
  mask:Spandex_util.Mask.t ->
  ?payload:Msg.payload ->
  unit ->
  unit
(** Respond to an external request; empty masks send nothing. *)

val reply_data :
  'o t ->
  Msg.t ->
  kind:Msg.rsp_kind ->
  dst:Msg.device_id ->
  mask:Spandex_util.Mask.t ->
  values:int array ->
  unit
(** {!reply} carrying the masked words of [values]. *)

val entry_ready : ?forced:bool -> 'o t -> int -> bool
(** A store-buffer entry issues once aged past the coalesce window,
    immediately when [forced], a release is flushing, or the buffer is
    half full. *)

val check_release : 'o t -> unit
(** Complete a pending release once the buffer is empty and the
    protocol's [writes_pending] census reaches zero. *)

val arm_drain : 'o t -> delay:int -> unit
(** Schedule the protocol's drain, coalescing concurrent arms. *)

val release : 'o t -> k:(unit -> unit) -> unit
(** Begin a release: flush the store buffer and call [k] when all
    outstanding writes have committed. *)

val wake_stalled : 'o t -> unit
(** Re-run stores that stalled on a full buffer (a drained entry may have
    freed space). *)

val stall_store : 'o t -> (unit -> unit) -> unit
(** Park a store that found the buffer full and arm a drain. *)

val trace_sample : 'o t -> time:int -> ?aux:int -> unit -> unit
(** Emit the occupancy counters; [aux] defaults to the store-buffer
    count. *)

val register_metrics :
  'o t ->
  device:string ->
  ?aux:string * (unit -> int) ->
  Spandex_obs.Metrics.t ->
  unit
(** Register the chassis's standard probes on a metrics registry: MSHR
    occupancy, store-buffer occupancy (or the [aux] (name, probe) gauge a
    protocol substitutes, as {!trace_sample}'s [aux] does), store-buffer
    full-stall and retry counters — all labelled [device]. *)

val pending_summary :
  'o t -> describe:('o -> string) -> extra:(int * string) list -> string
(** The sorted top-4 outstanding transactions as a [" [txn ...]"] suffix
    (empty string when idle).  [extra] adds entries tracked outside the
    MSHR file. *)

val describe_pending :
  'o t -> name:string -> describe:('o -> string) -> extra:(int * string) list -> string
(** The standard one-line watchdog report
    ["<name> <id>: sb=.. outstanding=.. stalled=..[ ...]"]. *)

val quiescent : 'o t -> bool
(** Store buffer empty, MSHR file empty, no stalled stores.  Protocols
    conjoin their own records (write-backs, parked requests). *)

val fingerprint :
  'o t ->
  Spandex_util.Fingerprint.t ->
  key:('o -> int) ->
  payload:(Spandex_util.Fingerprint.t -> 'o -> unit) ->
  unit
(** Append a canonical encoding of the shared transaction state (store
    buffer sorted by line, MSHR entries sorted by [key] — the protocol
    supplies a content key, typically [line * k + kind-tag] — then
    encoded by [payload]).  Used by the model checker. *)
