type adaptive = {
  write_threshold : int;
  read_threshold : int;
  saturation : int;
  wt_window : int;
}

type spec = Static_own | Adaptive of adaptive

let legacy_adaptive =
  { write_threshold = 2; read_threshold = 0; saturation = 3; wt_window = 8 }

let adaptive_writes = Adaptive legacy_adaptive
let adaptive_full = Adaptive { legacy_adaptive with read_threshold = 2 }

let name = function
  | Static_own -> "own"
  | Adaptive a ->
    if a.read_threshold > 0 then "adaptive-rw" else "adaptive-writes"

let make spec ~now ~coalesce_window =
  match spec with
  | Static_own ->
    Policy.static ~name:"own" ~read:Policy.Read_valid ~write:Policy.Write_own
  | Adaptive a ->
    (* Per-line saturating counters; lines never touched stay out of the
       tables entirely. *)
    let reuse = Hashtbl.create 64 in
    let read_misses = Hashtbl.create 64 in
    let last_wt = Hashtbl.create 64 in
    let count tbl line = Option.value ~default:0 (Hashtbl.find_opt tbl line) in
    let bump tbl line =
      Hashtbl.replace tbl line (min a.saturation (count tbl line + 1))
    in
    let decay tbl line = Hashtbl.replace tbl line (max 0 (count tbl line - 1)) in
    {
      Policy.name = name spec;
      classify_read =
        (fun ~line (_ : Policy.line_state) ->
          if a.read_threshold <= 0 then Policy.Read_valid
          else begin
            let seen = count read_misses line in
            bump read_misses line;
            if seen >= a.read_threshold then Policy.Read_own
            else Policy.Read_valid
          end);
      classify_write =
        (fun ~line ->
          (* A quick re-write after a write-through is the evidence that
             ownership would have paid off. *)
          (match Hashtbl.find_opt last_wt line with
          | Some cycle when now () - cycle < a.wt_window * coalesce_window ->
            bump reuse line
          | _ -> ());
          if count reuse line < a.write_threshold then Policy.Write_through
          else Policy.Write_own);
      on_store_hit_owned = (fun ~line -> bump reuse line);
      on_write_through = (fun ~line -> Hashtbl.replace last_wt line (now ()));
      on_downgrade =
        (fun ~line ->
          decay reuse line;
          if a.read_threshold > 0 then decay read_misses line);
    }
