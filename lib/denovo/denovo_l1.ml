module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module State = Spandex_proto.State
module Linedata = Spandex_proto.Linedata
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer
module Port = Spandex_device.Port
module Tu = Spandex.Tu
module Chassis = Spandex_l1.Chassis
module Policy = Spandex_l1.Policy
module Spandex_policy = Spandex_l1.Spandex_policy

type config = {
  id : Msg.device_id;
  llc_id : Msg.device_id;
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  max_reqv_retries : int;
  atomics_at_llc : bool;
  region_of : int -> int;
      (* software-provided region classification by line (paper II-C:
         DeNovo regions); [fun _ -> 0] when the program has no regions. *)
  policy : Spandex_policy.spec;
}

type line = {
  data : int array;
  mutable valid : Mask.t;  (* V words: self-invalidated at acquires. *)
  mutable owned : Mask.t;  (* O words: survive acquires. *)
}

type read_miss = {
  r_line : int;
  r_collector : Tu.t;
  mutable r_waiters : (int * (int -> unit)) list;
  r_epoch : int;
  mutable r_retries : int;
  r_own_mask : Mask.t;
      (* words requested with ReqO+data — after Nack conversion (III-C) or
         by policy promotion: the grant carries ownership, which must be
         installed as Owned — the LLC registers this cache as their owner. *)
}

(* A drained store-buffer entry waiting for its ReqO grant.  The values are
   the truth for these words from the moment the LLC serializes the grant,
   so external requests are answered from here ("up-to-date data is
   available: the pending request is a ReqO", §III-C case 1). *)
type own_req = {
  o_line : int;
  o_mask : Mask.t;
  o_values : int array;
  o_collector : Tu.t;
  mutable o_stolen : Mask.t;  (* downgraded away before local commit. *)
  o_through : bool;
      (* issued as a write-through (adaptive policy): completion leaves the
         words Valid, not Owned, and externals are never forwarded here. *)
}

(* A pending ReqO+data for a local RMW: externals that need the word's data
   must wait for it to arrive (§III-C case 1). *)
type rmw_req = {
  w_line : int;
  w_word : int;
  w_amo : Amo.t;
  w_collector : Tu.t;
  mutable w_stolen : bool;  (* a data-less fwd ReqO took the word. *)
  mutable w_queued : Msg.t list;  (* delayed externals, FIFO. *)
  w_k : int -> unit;
}

type atomic_req = { at_k : int -> unit }

(* A replaced-Owned write-back: data retained until RspWB (§III-A). *)
type wb_req = { b_line : int; b_mask : Mask.t; b_values : int array }

type outstanding =
  | Read of read_miss
  | Own of own_req
  | Rmw of rmw_req
  | Atomic of atomic_req

type t = {
  ch : outstanding Chassis.t;
  cfg : config;
  frame : line Cache_frame.t;
  (* Write-backs in flight, keyed by transaction id; outside the MSHR file
     because the record must exist from the instant the words leave the
     frame (cf. Mesi_l1.wb_records). *)
  wb_records : (int, wb_req) Hashtbl.t;
  (* Per-request classification (the Spandex flexibility knob): static for
     classic DeNovo, reuse-predicted for the adaptive configurations. *)
  policy : Policy.t;
  k_store_hit_owned : Stats.key;
  k_wt_chosen : Stats.key;
  k_reqo_issued : Stats.key;
  k_reqo_words : Stats.key;
  k_wb_issued : Stats.key;
  mutable epoch : int;
}

let send t msg = Chassis.send t.ch msg

let request t ~txn ~kind ~line ~mask ?demand ?payload ?amo () =
  Chassis.request t.ch ~txn ~kind ~line ~mask ?demand ?payload ?amo ()

let free_txn t ~txn = Chassis.free_txn t.ch ~txn

let reply t (msg : Msg.t) ~kind ~dst ~mask ?payload () =
  Chassis.reply t.ch msg ~kind ~dst ~mask ?payload ()

(* ----- frame management ----------------------------------------------------- *)

let send_wb t ~line ~mask ~values =
  let txn = Chassis.fresh_txn t.ch in
  Hashtbl.replace t.wb_records txn { b_line = line; b_mask = mask; b_values = values };
  Stats.bump t.ch.Chassis.stats t.k_wb_issued;
  request t ~txn ~kind:Msg.ReqWB ~line ~mask
    ~payload:(Msg.pooled_pack ~mask ~full:values)
    ()

let get_or_alloc t line_id =
  match Cache_frame.find_exn t.frame ~line:line_id with
  | l -> l
  | exception Not_found -> (
    let fresh =
      {
        data = Array.make Addr.words_per_line 0;
        valid = Mask.empty;
        owned = Mask.empty;
      }
    in
    match
      Cache_frame.insert t.frame ~line:line_id fresh ~can_evict:(fun ~line:_ _ ->
          true)
    with
    | Cache_frame.Inserted -> fresh
    | Cache_frame.Evicted (vline, vmeta) ->
      Stats.incr t.ch.Chassis.stats "evictions";
      if not (Mask.is_empty vmeta.owned) then
        send_wb t ~line:vline ~mask:vmeta.owned
          ~values:(Array.copy vmeta.data);
      fresh
    | Cache_frame.No_room -> assert false)

(* ----- write-through of the store buffer as ownership requests -------------- *)

let writes_pending t =
  let n = ref 0 in
  Mshr.iter t.ch.Chassis.outstanding ~f:(fun ~txn:_ -> function
    | Own _ | Atomic _ -> incr n
    | Read _ | Rmw _ -> ());
  !n

let rec drain t =
  match Store_buffer.peek_oldest_exn t.ch.Chassis.sb with
  | exception Not_found -> Chassis.check_release t.ch
  | e ->
    if not (Chassis.entry_ready t.ch e.Store_buffer.line) then
      Chassis.arm_drain t.ch ~delay:(max 1 t.cfg.coalesce_window)
    else if Mshr.is_full t.ch.Chassis.outstanding then ()
    else begin
      let e = Store_buffer.take_oldest_exn t.ch.Chassis.sb in
      let through =
        t.policy.Policy.classify_write ~line:e.Store_buffer.line
        = Policy.Write_through
      in
      let record =
        {
          o_line = e.Store_buffer.line;
          o_mask = e.Store_buffer.mask;
          o_values = Array.copy e.Store_buffer.values;
          o_collector = Tu.create ~demand:e.Store_buffer.mask;
          o_stolen = Mask.empty;
          o_through = through;
        }
      in
      (match Mshr.alloc t.ch.Chassis.outstanding (Own record) with
      | Some txn ->
        if through then begin
          Stats.bump t.ch.Chassis.stats t.k_wt_chosen;
          t.policy.Policy.on_write_through ~line:e.Store_buffer.line;
          request t ~txn ~kind:Msg.ReqWT ~line:e.Store_buffer.line
            ~mask:e.Store_buffer.mask
            ~payload:
              (Msg.pooled_pack ~mask:e.Store_buffer.mask
                 ~full:e.Store_buffer.values)
            ()
        end
        else begin
          Stats.bump t.ch.Chassis.stats t.k_reqo_issued;
          Stats.bump_by t.ch.Chassis.stats t.k_reqo_words
            (Mask.count e.Store_buffer.mask);
          (* Ownership without data: every requested word is overwritten. *)
          request t ~txn ~kind:Msg.ReqO ~line:e.Store_buffer.line
            ~mask:e.Store_buffer.mask ()
        end
      | None -> assert false);
      Store_buffer.release t.ch.Chassis.sb e;
      Chassis.wake_stalled t.ch;
      drain t
    end

let commit_own t (o : own_req) =
  let commit = Mask.diff o.o_mask o.o_stolen in
  if not (Mask.is_empty commit) then begin
    let l = get_or_alloc t o.o_line in
    Mask.iter commit ~f:(fun w -> l.data.(w) <- o.o_values.(w));
    if o.o_through then
      (* Write-through completion: the LLC holds the data; our copy is a
         Valid replica. *)
      l.valid <- Mask.union l.valid commit
    else begin
      l.owned <- Mask.union l.owned commit;
      l.valid <- Mask.diff l.valid commit
    end
  end

(* ----- pending-write lookup (for local loads and external requests) --------- *)

let find_own_covering ?(include_through = true) t ~line ~word =
  if Mshr.count t.ch.Chassis.outstanding = 0 then None
  else
  match
    Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
      | Own o ->
        o.o_line = line
        && (include_through || not o.o_through)
        && Mask.mem (Mask.diff o.o_mask o.o_stolen) word
      | _ -> false)
  with
  | Own o -> Some o
  | _ -> None
  | exception Not_found -> None

let find_rmw_covering t ~line ~word =
  if Mshr.count t.ch.Chassis.outstanding = 0 then None
  else
  match
    Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
      | Rmw r -> r.w_line = line && r.w_word = word && not r.w_stolen
      | _ -> false)
  with
  | Rmw r -> Some r
  | _ -> None
  | exception Not_found -> None

let find_wb_covering t ~line ~word =
  if Hashtbl.length t.wb_records = 0 then None
  else
  Hashtbl.fold
    (fun _ (b : wb_req) acc ->
      if b.b_line = line && Mask.mem b.b_mask word then Some b else acc)
    t.wb_records None

(* Words a converted or promoted read (ReqO+data) is mid-granting: the LLC
   already lists this cache as their owner, but the data is still on the
   wire. *)
let read_own_pending t ~line ~word =
  Mshr.count t.ch.Chassis.outstanding > 0
  && Mshr.exists t.ch.Chassis.outstanding ~f:(function
       | Read m -> m.r_line = line && Mask.mem m.r_own_mask word
       | _ -> false)

(* Any write-side transaction alive for [line]: a promoted (ReqO+data) read
   issued beside one could be answered with a data-less self-grant. *)
let line_write_pending t ~line =
  (Mshr.count t.ch.Chassis.outstanding > 0
  && Mshr.exists t.ch.Chassis.outstanding ~f:(function
       | Own o -> o.o_line = line
       | Rmw r -> r.w_line = line
       | Read _ | Atomic _ -> false))
  || Hashtbl.length t.wb_records > 0
     && Hashtbl.fold
          (fun _ (b : wb_req) acc -> acc || b.b_line = line)
          t.wb_records false

(* ----- loads ---------------------------------------------------------------- *)

let install_fill t (m : read_miss) (r : Tu.result) =
  (* Ownership granted by a converted or promoted read is installed
     unconditionally: the LLC now lists this cache as the owner (and Owned
     data survives acquires, so the epoch guard does not apply to it). *)
  let granted = Mask.inter r.Tu.data_mask m.r_own_mask in
  if not (Mask.is_empty granted) then begin
    let l = get_or_alloc t m.r_line in
    Mask.iter granted ~f:(fun w -> l.data.(w) <- r.Tu.values.(w));
    l.owned <- Mask.union l.owned granted;
    l.valid <- Mask.diff l.valid granted
  end;
  if m.r_epoch = t.epoch then begin
    let l = get_or_alloc t m.r_line in
    (* Only words still Invalid locally take the fill; Owned (and locally
       written Valid) words keep the local copy. *)
    let fresh =
      Mask.diff (Mask.diff r.Tu.data_mask granted) (Mask.union l.valid l.owned)
    in
    Mask.iter fresh ~f:(fun w -> l.data.(w) <- r.Tu.values.(w));
    l.valid <- Mask.union l.valid fresh
  end
  else Stats.incr t.ch.Chassis.stats "stale_fill_dropped"

let rec load t (addr : Addr.t) ~k =
  (* The hit paths apply [k] through the engine's closure-free Apply event;
     [done_] is deliberately not a local closure so a load hit allocates
     nothing. *)
  let { Addr.line; word } = addr in
  match Store_buffer.forward t.ch.Chassis.sb ~addr with
  | Some v ->
    Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_sb_fwd;
    Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k v
  | None -> (
    match find_own_covering t ~line ~word with
    | Some o ->
      Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_sb_fwd;
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
        o.o_values.(word)
    | None -> (
    match find_wb_covering t ~line ~word with
    | Some b ->
      (* The word is mid-write-back: the LLC still lists us as owner, so a
         ReqV would be forwarded right back; serve the retained data. *)
      Stats.incr t.ch.Chassis.stats "load_wb_fwd";
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
        b.b_values.(word)
    | None when find_rmw_covering t ~line ~word <> None ->
      (* Another context's RMW to this word is mid-grant; once it commits
         the load hits the owned word locally. *)
      Stats.incr t.ch.Chassis.stats "load_rmw_defer";
      Engine.schedule t.ch.Chassis.engine ~delay:3 (fun () -> load t addr ~k)
    | None -> (
      match Cache_frame.find_exn t.frame ~line with
      | l when Mask.mem (Mask.union l.valid l.owned) word ->
        Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_hit;
        Cache_frame.touch t.frame ~line;
        Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
          l.data.(word)
      | _ | (exception Not_found) -> (
        Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_miss;
        match
          Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
            | Read m -> m.r_line = line && m.r_epoch = t.epoch
            | _ -> false)
        with
        | Read m ->
          Stats.incr t.ch.Chassis.stats "load_miss_coalesced";
          m.r_waiters <- (word, k) :: m.r_waiters
        | _ -> assert false
        | exception Not_found -> (
          let have =
            match Cache_frame.find_exn t.frame ~line with
            | l -> Mask.union l.valid l.owned
            | exception Not_found -> Mask.empty
          in
          let mask = Mask.diff Addr.full_mask have in
          (* Per-request read classification: repeated misses to a line may
             promote the ReqV to a ReqO+data whose fill installs as Owned
             and survives later acquires.  Promotion is suppressed while
             any write-side transaction is alive for the line — the LLC
             could answer with a data-less self-grant. *)
          let promote =
            match t.policy.Policy.classify_read ~line Policy.absent with
            | Policy.Read_own -> not (line_write_pending t ~line)
            | Policy.Read_valid | Policy.Read_shared -> false
          in
          if promote then begin
            Stats.incr t.ch.Chassis.stats "load_promoted_own";
            let m =
              {
                r_line = line;
                r_collector = Tu.create ~demand:mask;
                r_waiters = [ (word, k) ];
                r_epoch = t.epoch;
                r_retries = 0;
                r_own_mask = mask;
              }
            in
            match Mshr.alloc t.ch.Chassis.outstanding (Read m) with
            | Some txn -> request t ~txn ~kind:Msg.ReqOdata ~line ~mask ()
            | None ->
              Stats.incr t.ch.Chassis.stats "mshr_stall";
              Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () ->
                  load t addr ~k)
          end
          else
            let demand = Mask.singleton word in
            let m =
              {
                r_line = line;
                r_collector = Tu.create ~demand;
                r_waiters = [ (word, k) ];
                r_epoch = t.epoch;
                r_retries = 0;
                r_own_mask = Mask.empty;
              }
            in
            match Mshr.alloc t.ch.Chassis.outstanding (Read m) with
            | Some txn ->
              (* Word-granularity demand, opportunistic line fill
                 (Table II: ReqV "flexible"). *)
              request t ~txn ~kind:Msg.ReqV ~line ~mask ~demand ()
            | None ->
              Stats.incr t.ch.Chassis.stats "mshr_stall";
              Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () ->
                  load t addr ~k))))))

and complete_read t ~txn (m : read_miss) (r : Tu.result) =
  free_txn t ~txn;
  install_fill t m r;
  let covered, uncovered =
    List.partition (fun (w, _) -> Mask.mem r.Tu.data_mask w) m.r_waiters
  in
  List.iter (fun (w, k) -> k r.Tu.values.(w)) (List.rev covered);
  (* Waiters whose word was not in this fill re-enter the load path. *)
  List.iter
    (fun (w, k) -> load t { Addr.line = m.r_line; word = w } ~k)
    (List.rev uncovered);
  drain t

and handle_read_nacks t ~txn (m : read_miss) (r : Tu.result) =
  Chassis.trace_nack t.ch ~txn ~count:(Mask.count r.Tu.nacked);
  if m.r_retries < t.cfg.max_reqv_retries then begin
    let m' =
      {
        m with
        r_collector = Tu.create ~demand:r.Tu.nacked;
        r_retries = m.r_retries + 1;
      }
    in
    match seed_collector m' r with
    | Some r' ->
      (* A retransmitted response already supplied data for every Nacked
         word: the fresh collector is complete before any retry goes out. *)
      complete_read t ~txn m' r'
    | None -> (
      Stats.incr t.ch.Chassis.stats "reqv_retry";
      free_txn t ~txn;
      match Mshr.alloc t.ch.Chassis.outstanding (Read m') with
      | Some txn' ->
        request t ~txn:txn' ~kind:Msg.ReqV ~line:m.r_line ~mask:r.Tu.nacked
          ~demand:r.Tu.nacked ();
        Chassis.trace_chain t.ch ~txn ~txn'
      | None -> assert false)
  end
  else begin
    (* Convert to ReqO+data to enforce ordering (§III-C case 3). *)
    let m' =
      {
        m with
        r_collector = Tu.create ~demand:r.Tu.nacked;
        r_own_mask = r.Tu.nacked;
      }
    in
    match seed_collector m' r with
    | Some r' -> complete_read t ~txn m' r'
    | None -> (
      Stats.incr t.ch.Chassis.stats "reqv_converted";
      free_txn t ~txn;
      match Mshr.alloc t.ch.Chassis.outstanding (Read m') with
      | Some txn' ->
        request t ~txn:txn' ~kind:Msg.ReqOdata ~line:m.r_line ~mask:r.Tu.nacked
          ();
        Chassis.trace_chain t.ch ~txn ~txn'
      | None -> assert false)
  end

and seed_collector (m : read_miss) (r : Tu.result) =
  if Mask.is_empty r.Tu.data_mask then None
  else
    Tu.absorb m.r_collector
      (Msg.make ~txn:0 ~kind:(Msg.Rsp Msg.RspV) ~line:m.r_line
         ~mask:r.Tu.data_mask
         ~payload:
           (Msg.pooled_pack ~mask:r.Tu.data_mask ~full:r.Tu.values)
         ~src:0 ~dst:0 ())

(* ----- stores --------------------------------------------------------------- *)

let rec store t (addr : Addr.t) ~value ~k =
  let { Addr.line; word } = addr in
  match Cache_frame.find_exn t.frame ~line with
  | l when Mask.mem l.owned word ->
    Stats.bump t.ch.Chassis.stats t.k_store_hit_owned;
    t.policy.Policy.on_store_hit_owned ~line;
    l.data.(word) <- value;
    Engine.schedule t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
  | _ | (exception Not_found) -> (
    match
      Store_buffer.push t.ch.Chassis.sb ~addr ~value
        ~now:(Engine.now t.ch.Chassis.engine)
    with
    | `Coalesced | `New ->
      Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_stores;
      Chassis.arm_drain t.ch ~delay:1;
      Engine.schedule t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
    | `Full -> Chassis.stall_store t.ch (fun () -> store t addr ~value ~k))

(* ----- RMWs ----------------------------------------------------------------- *)

let rec finish_rmw t ~txn (r : rmw_req) ~value =
  let next, old = Amo.apply r.w_amo value in
  free_txn t ~txn;
  if (not r.w_stolen) && r.w_queued = [] then begin
    let l = get_or_alloc t r.w_line in
    l.data.(r.w_word) <- next;
    l.owned <- Mask.add l.owned r.w_word;
    l.valid <- Mask.remove l.valid r.w_word
  end
  else begin
    Stats.incr t.ch.Chassis.stats "rmw_intercepted";
    (* The word was (or is being) taken: serve the delayed externals with
       the post-RMW value, keeping nothing locally. *)
    let l = get_or_alloc t r.w_line in
    l.data.(r.w_word) <- next;
    if not r.w_stolen then l.owned <- Mask.add l.owned r.w_word;
    let queued = r.w_queued in
    r.w_queued <- [];
    List.iter (fun m -> external_req t m) queued
  end;
  r.w_k old;
  drain t

and rmw t (addr : Addr.t) amo ~k =
  let { Addr.line; word } = addr in
  if t.cfg.atomics_at_llc then begin
    Stats.incr t.ch.Chassis.stats "rmw_at_llc";
    (match Cache_frame.find_exn t.frame ~line with
    | l -> l.valid <- Mask.remove l.valid word
    | exception Not_found -> ());
    match Mshr.alloc t.ch.Chassis.outstanding (Atomic { at_k = k }) with
    | Some txn ->
      request t ~txn ~kind:Msg.ReqWTdata ~line ~mask:(Mask.singleton word)
        ~amo ()
    | None ->
      Stats.incr t.ch.Chassis.stats "mshr_stall";
      Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () -> rmw t addr amo ~k)
  end
  else
    match Cache_frame.find_exn t.frame ~line with
    | l when Mask.mem l.owned word ->
      Stats.incr t.ch.Chassis.stats "rmw_hit_owned";
      let next, old = Amo.apply amo l.data.(word) in
      l.data.(word) <- next;
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k old
    | _ | (exception Not_found) ->
      if
        find_rmw_covering t ~line ~word <> None
        || find_own_covering t ~line ~word <> None
        || find_wb_covering t ~line ~word <> None
      then begin
        (* Another context's write to this word is mid-grant, or the word is
           mid-write-back (the LLC would answer a ReqO+data with a data-less
           self-grant); wait and re-enter. *)
        Stats.incr t.ch.Chassis.stats "rmw_serialized";
        Engine.schedule t.ch.Chassis.engine ~delay:3 (fun () ->
            rmw t addr amo ~k)
      end
      else begin
        Stats.incr t.ch.Chassis.stats "rmw_miss";
        let r =
          {
            w_line = line;
            w_word = word;
            w_amo = amo;
            w_collector = Tu.create ~demand:(Mask.singleton word);
            w_stolen = false;
            w_queued = [];
            w_k = k;
          }
        in
        match Mshr.alloc t.ch.Chassis.outstanding (Rmw r) with
        | Some txn ->
          request t ~txn ~kind:Msg.ReqOdata ~line ~mask:(Mask.singleton word)
            ()
        | None ->
          Stats.incr t.ch.Chassis.stats "mshr_stall";
          Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () ->
              rmw t addr amo ~k)
      end

(* ----- external requests (the device-side of Table IV) ---------------------- *)

and external_req t (msg : Msg.t) =
  let { Msg.line; mask; _ } = msg in
  let respond_words ~kind ~dst ~words ~values =
    if not (Mask.is_empty words) then
      reply t msg ~kind ~dst ~mask:words
        ~payload:(Msg.pooled_pack ~mask:words ~full:values)
        ()
  in
  (* Partition the requested words by where their truth currently lives. *)
  let frame_line = Cache_frame.find t.frame ~line in
  let remaining = ref mask in
  let take p =
    let words = Mask.fold !remaining ~init:Mask.empty ~f:(fun acc w ->
        if p w then Mask.add acc w else acc)
    in
    remaining := Mask.diff !remaining words;
    words
  in
  (* The write-back record is consulted first: forwards arriving while it
     is alive were serialized before the write-back at the LLC and target
     the old ownership epoch (cf. Mesi_l1.external_req). *)
  let in_wb = take (fun w -> find_wb_covering t ~line ~word:w <> None) in
  let owned_here =
    take (fun w ->
        match frame_line with
        | Some l -> Mask.mem l.owned w
        | None -> false)
  in
  let in_own =
    take (fun w ->
        find_own_covering ~include_through:false t ~line ~word:w <> None)
  in
  let in_rmw = take (fun w -> find_rmw_covering t ~line ~word:w <> None) in
  let in_read = take (fun w -> read_own_pending t ~line ~word:w) in
  let absent = !remaining in
  let kind_needs_data = Msg.kind_needs_data msg.Msg.kind in
  (* Words mid-RMW: data-needing requests wait for the fill; data-less
     downgrades steal immediately. *)
  if not (Mask.is_empty in_rmw) then begin
    if kind_needs_data then begin
      Stats.incr t.ch.Chassis.stats "ext_delayed";
      Mask.iter in_rmw ~f:(fun w ->
          match find_rmw_covering t ~line ~word:w with
          | Some r ->
            (* The narrowed copy aliases [msg]'s payload; pin the original
               so recycling cannot hand its array to another message. *)
            Msg.keep msg;
            r.w_queued <-
              r.w_queued @ [ { msg with Msg.mask = Mask.singleton w } ]
          | None -> assert false)
    end
    else
      Mask.iter in_rmw ~f:(fun w ->
          match find_rmw_covering t ~line ~word:w with
          | Some r ->
            r.w_stolen <- true;
            reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor
              ~mask:(Mask.singleton w) ()
          | None -> assert false)
  end;
  let serve ~words ~values ~downgrade =
    if not (Mask.is_empty words) then begin
      match msg.Msg.kind with
      | Msg.Req Msg.ReqV ->
        (* No state change (Table IV: expected O, next O). *)
        respond_words ~kind:Msg.RspV ~dst:msg.Msg.requestor ~words ~values
      | Msg.Req Msg.ReqO ->
        downgrade words;
        reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:words ()
      | Msg.Req Msg.ReqOdata ->
        downgrade words;
        respond_words ~kind:Msg.RspOdata ~dst:msg.Msg.requestor ~words ~values
      | Msg.Req Msg.ReqS ->
        (* DeNovo has no Shared state: surrender the data to both the
           requestor and the LLC and fall to Invalid. *)
        downgrade words;
        respond_words ~kind:Msg.RspS ~dst:msg.Msg.requestor ~words ~values;
        respond_words ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~words ~values
      | Msg.Probe Msg.RvkO ->
        downgrade words;
        respond_words ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~words ~values
      | _ -> assert false
    end
  in
  (* Owned in the frame: the normal case. *)
  (match frame_line with
  | Some l ->
    serve ~words:owned_here ~values:l.data ~downgrade:(fun words ->
        t.policy.Policy.on_downgrade ~line;
        l.owned <- Mask.diff l.owned words)
  | None -> assert (Mask.is_empty owned_here));
  (* Granted-but-uncommitted stores: answer from the pending values. *)
  Mask.iter in_own ~f:(fun w ->
      match find_own_covering ~include_through:false t ~line ~word:w with
      | Some o ->
        serve ~words:(Mask.singleton w) ~values:o.o_values
          ~downgrade:(fun words -> o.o_stolen <- Mask.union o.o_stolen words)
      | None -> assert false);
  (* Pending write-back: respond with the retained data; the LLC treats the
     in-flight ReqWB as the data carrier (§III-C case 2). *)
  (match
     ( Mask.is_empty in_wb,
       Hashtbl.fold
         (fun _ (b : wb_req) acc ->
           if b.b_line = line && not (Mask.is_empty (Mask.inter b.b_mask in_wb))
           then Some b
           else acc)
         t.wb_records None )
   with
  | true, _ -> ()
  | false, Some b -> (
    match msg.Msg.kind with
    | Msg.Req Msg.ReqV ->
      respond_words ~kind:Msg.RspV ~dst:msg.Msg.requestor ~words:in_wb
        ~values:b.b_values
    | Msg.Req Msg.ReqO ->
      reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:in_wb ()
    | Msg.Req Msg.ReqOdata ->
      respond_words ~kind:Msg.RspOdata ~dst:msg.Msg.requestor ~words:in_wb
        ~values:b.b_values
    | Msg.Req Msg.ReqS ->
      respond_words ~kind:Msg.RspS ~dst:msg.Msg.requestor ~words:in_wb
        ~values:b.b_values;
      (* Data already travels in the pending ReqWB (footnote 5). *)
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:in_wb ()
    | Msg.Probe Msg.RvkO ->
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:in_wb ()
    | _ -> assert false)
  | false, _ -> assert false);
  (* Words mid-grant to a converted or promoted read: the fill is in
     flight from the LLC (the response cannot be Nacked), so re-dispatch
     once it lands and the words are Owned in the frame. *)
  if not (Mask.is_empty in_read) then begin
    Stats.incr t.ch.Chassis.stats "ext_deferred_read";
    (* Snapshot now: by the time the closure fires the original may have
       been recycled and reused for an unrelated message.  The copy still
       aliases the payload, so pin both records. *)
    let deferred =
      {
        msg with
        Msg.mask = in_read;
        Msg.demand = Mask.inter msg.Msg.demand in_read;
      }
    in
    Msg.keep msg;
    Msg.keep deferred;
    Engine.schedule t.ch.Chassis.engine ~delay:3 (fun () ->
        external_req t deferred)
  end;
  (* Words we hold in no form. *)
  if not (Mask.is_empty absent) then begin
    match msg.Msg.kind with
    | Msg.Req Msg.ReqV ->
      (* Ownership moved on before the forwarded ReqV arrived: Nack the
         demanded words so the requestor's TU can retry (§III-C case 3);
         opportunistic words are silently dropped. *)
      let demanded = Mask.inter absent msg.Msg.demand in
      if not (Mask.is_empty demanded) then begin
        Stats.incr t.ch.Chassis.stats "nack_sent";
        reply t msg ~kind:Msg.Nack ~dst:msg.Msg.requestor ~mask:demanded ()
      end
    | Msg.Req Msg.ReqO ->
      reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:absent ()
    | _ ->
      failwith
        (Format.asprintf "Denovo_l1 %d: data-needing external for absent words %a"
           t.cfg.id Msg.pp msg)
  end

(* ----- synchronization ------------------------------------------------------ *)

(* Flash self-invalidation of Valid words, optionally restricted to one
   software region (paper II-C: "selectively invalidating only potentially
   stale data based on information from software").  Owned words always
   survive. *)
let acquire_matching t ~matches ~k =
  Stats.incr t.ch.Chassis.stats "acquire_flash";
  let empties =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line l ->
        if matches line then begin
          l.valid <- Mask.empty;
          if Mask.is_empty l.owned then line :: acc else acc
        end
        else acc)
  in
  List.iter (fun line -> Cache_frame.remove t.frame ~line) empties;
  t.epoch <- t.epoch + 1;
  Engine.schedule t.ch.Chassis.engine ~delay:1 k

let acquire t ~k = acquire_matching t ~matches:(fun _ -> true) ~k

let acquire_region t ~region ~k =
  Stats.incr t.ch.Chassis.stats "acquire_region";
  acquire_matching t ~matches:(fun line -> t.cfg.region_of line = region) ~k

let release t ~k = Chassis.release t.ch ~k

(* ----- responses ------------------------------------------------------------ *)

let handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Req _ -> external_req t msg
  | Msg.Probe Msg.RvkO -> external_req t msg
  | Msg.Probe Msg.Inv ->
    (* No Shared state: silently acknowledge (§III-C case 3). *)
    send t
      (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp Msg.Ack) ~line:msg.Msg.line
         ~mask:msg.Msg.mask ~src:t.cfg.id ~dst:msg.Msg.src ())
  | Msg.Rsp _ when Hashtbl.mem t.wb_records msg.Msg.txn ->
    (match msg.Msg.kind with
    | Msg.Rsp Msg.RspWB -> ()
    | _ -> failwith "Denovo_l1: unexpected write-back response");
    Hashtbl.remove t.wb_records msg.Msg.txn;
    Chassis.retire t.ch ~txn:msg.Msg.txn;
    drain t
  | Msg.Rsp _ -> (
    match Mshr.find_exn t.ch.Chassis.outstanding ~txn:msg.Msg.txn with
    | exception Not_found -> Stats.incr t.ch.Chassis.stats "orphan_rsp"
    | Read m -> (
      match Tu.absorb m.r_collector msg with
      | None -> ()
      | Some r ->
        if Mask.is_empty r.Tu.nacked then complete_read t ~txn:msg.Msg.txn m r
        else handle_read_nacks t ~txn:msg.Msg.txn m r)
    | Own o -> (
      match Tu.absorb o.o_collector msg with
      | None -> ()
      | Some _ ->
        free_txn t ~txn:msg.Msg.txn;
        commit_own t o;
        Chassis.check_release t.ch;
        drain t)
    | Rmw r -> (
      match Tu.absorb r.w_collector msg with
      | None -> ()
      | Some res ->
        assert (Mask.is_empty res.Tu.nacked);
        if Mask.mem res.Tu.data_mask r.w_word then
          finish_rmw t ~txn:msg.Msg.txn r ~value:res.Tu.values.(r.w_word)
        else begin
          (* Granted without data: the LLC believed we already owned the
             word. If we do, apply locally; if a racing local transaction
             holds the truth, retry from the top. *)
          match Cache_frame.find_exn t.frame ~line:r.w_line with
          | l when Mask.mem (Mask.union l.valid l.owned) r.w_word ->
            finish_rmw t ~txn:msg.Msg.txn r ~value:l.data.(r.w_word)
          | _ | (exception Not_found) ->
            Stats.incr t.ch.Chassis.stats "rmw_regranted";
            if r.w_queued <> [] then
              failwith "Denovo_l1: data-less RMW grant with queued externals";
            free_txn t ~txn:msg.Msg.txn;
            Engine.schedule t.ch.Chassis.engine ~delay:2 (fun () ->
                rmw t { Addr.line = r.w_line; word = r.w_word } r.w_amo
                  ~k:r.w_k)
        end)
    | Atomic a -> (
      match (msg.Msg.kind, msg.Msg.payload) with
      | Msg.Rsp Msg.RspWTdata, (Msg.Data values | Msg.Data_pooled values) ->
        free_txn t ~txn:msg.Msg.txn;
        a.at_k values.(0);
        Chassis.check_release t.ch;
        drain t
      | _ -> failwith "Denovo_l1: unexpected atomic response")
  )

(* ----- construction --------------------------------------------------------- *)

let quiescent t = Chassis.quiescent t.ch && Hashtbl.length t.wb_records = 0

let describe_pending t =
  let extra =
    Hashtbl.fold
      (fun txn (b : wb_req) acc ->
        (txn, Printf.sprintf "Wb line %d" b.b_line) :: acc)
      t.wb_records []
  in
  Chassis.describe_pending t.ch ~name:"denovo_l1"
    ~describe:(function
      | Read m -> Printf.sprintf "Read line %d" m.r_line
      | Own o -> Printf.sprintf "Own line %d" o.o_line
      | Rmw r -> Printf.sprintf "Rmw line %d.%d" r.w_line r.w_word
      | Atomic _ -> "Atomic")
    ~extra

let trace_sample t ~time = Chassis.trace_sample t.ch ~time ()

let register_metrics t ~device reg =
  Chassis.register_metrics t.ch ~device reg

let create engine net cfg =
  let ch =
    Chassis.create engine net ~id:cfg.id ~home_id:cfg.llc_id
      ~home_banks:cfg.llc_banks ~hit_latency:cfg.hit_latency
      ~coalesce_window:cfg.coalesce_window ~mshrs:cfg.mshrs
      ~sb_capacity:cfg.sb_capacity ~level:"l1" ~aux:"sb"
  in
  let t =
    {
      ch;
      cfg;
      frame = Cache_frame.create ~sets:cfg.sets ~ways:cfg.ways;
      wb_records = Hashtbl.create 16;
      policy =
        Spandex_policy.make cfg.policy
          ~now:(fun () -> Engine.now engine)
          ~coalesce_window:cfg.coalesce_window;
      k_store_hit_owned = Stats.key ch.Chassis.stats "store_hit_owned";
      k_wt_chosen = Stats.key ch.Chassis.stats "wt_chosen";
      k_reqo_issued = Stats.key ch.Chassis.stats "reqo_issued";
      k_reqo_words = Stats.key ch.Chassis.stats "reqo_words";
      k_wb_issued = Stats.key ch.Chassis.stats "wb_issued";
      epoch = 0;
    }
  in
  ch.Chassis.drain <- (fun () -> drain t);
  ch.Chassis.writes_pending <- (fun () -> writes_pending t);
  ch.Chassis.source_line <-
    (function
    | Read m -> m.r_line
    | Own o -> o.o_line
    | Rmw r -> r.w_line
    | Atomic _ -> -1);
  ch.Chassis.source_what <-
    (function
    | Read _ -> "Read miss"
    | Own _ -> "Own request"
    | Rmw _ -> "Rmw request"
    | Atomic _ -> "Atomic at LLC");
  Engine.register_pending_source engine (fun () ->
      Hashtbl.fold
        (fun txn (b : wb_req) acc ->
          {
            Engine.pw_device = Printf.sprintf "denovo_l1.%d" cfg.id;
            pw_txn = txn;
            pw_line = b.b_line;
            pw_what = "write-back awaiting RspWB";
          }
          :: acc)
        t.wb_records []);
  Network.register net ~id:cfg.id (fun msg -> handle t msg);
  t

let port t =
  {
    Port.load = (fun addr ~k -> load t addr ~k);
    store = (fun addr ~value ~k -> store t addr ~value ~k);
    rmw = (fun addr amo ~k -> rmw t addr amo ~k);
    acquire = (fun ~k -> acquire t ~k);
    acquire_region = (fun ~region ~k -> acquire_region t ~region ~k);
    release = (fun ~k -> release t ~k);
    quiescent = (fun () -> quiescent t);
    describe_pending = (fun () -> describe_pending t);
  }

let stats t = t.ch.Chassis.stats

let word_state t (addr : Addr.t) =
  match Cache_frame.find t.frame ~line:addr.Addr.line with
  | None -> State.I
  | Some l ->
    if Mask.mem l.owned addr.Addr.word then State.O
    else if Mask.mem l.valid addr.Addr.word then State.V
    else State.I

let peek_word t (addr : Addr.t) =
  match Cache_frame.find t.frame ~line:addr.Addr.line with
  | Some l when Mask.mem (Mask.union l.valid l.owned) addr.Addr.word ->
    Some l.data.(addr.Addr.word)
  | _ -> None

let count_words t f =
  Cache_frame.fold t.frame ~init:0 ~f:(fun acc ~line:_ l ->
      acc + Mask.count (f l))

let owned_words t = count_words t (fun l -> l.owned)
let valid_words t = count_words t (fun l -> l.valid)

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fp_collector fp c =
  let r = Tu.peek c in
  Fp.int fp (r.Tu.data_mask :> int);
  Fp.int fp (r.Tu.acked :> int);
  Fp.int fp (r.Tu.nacked :> int);
  Fp.masked_array fp ~mask:r.Tu.data_mask r.Tu.values

let fp_waiters fp ws = Fp.list fp Fp.int (List.sort compare (List.map fst ws))

let fp_amo fp = function
  | Amo.Read -> Fp.int fp 0
  | Amo.Exch v ->
    Fp.int fp 1;
    Fp.int fp v
  | Amo.Add v ->
    Fp.int fp 2;
    Fp.int fp v
  | Amo.Max v ->
    Fp.int fp 3;
    Fp.int fp v
  | Amo.Cas { expected; desired } ->
    Fp.int fp 4;
    Fp.int fp expected;
    Fp.int fp desired

let fingerprint t fp =
  Fp.tag fp "denovo";
  Fp.int fp t.cfg.id;
  Fp.int fp t.epoch;
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line l -> (line, l) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, l) ->
      Fp.int fp line;
      Fp.int fp (l.valid :> int);
      Fp.int fp (l.owned :> int);
      Fp.masked_array fp ~mask:(Mask.union l.valid l.owned) l.data)
    lines;
  Chassis.fingerprint t.ch fp
    ~key:(function
      | Read m -> (m.r_line * 8) + 0
      | Own o -> (o.o_line * 8) + 1
      | Rmw r -> (r.w_line * 8) + 2
      | Atomic _ -> 3)
    ~payload:(fun fp -> function
      | Read m ->
        Fp.tag fp "R";
        Fp.int fp m.r_line;
        Fp.int fp (m.r_own_mask :> int);
        Fp.int fp m.r_retries;
        Fp.int fp (t.epoch - m.r_epoch);
        fp_waiters fp m.r_waiters;
        fp_collector fp m.r_collector
      | Own o ->
        Fp.tag fp "O";
        Fp.int fp o.o_line;
        Fp.int fp (o.o_mask :> int);
        Fp.masked_array fp ~mask:o.o_mask o.o_values;
        Fp.int fp (o.o_stolen :> int);
        Fp.bool fp o.o_through;
        fp_collector fp o.o_collector
      | Rmw r ->
        Fp.tag fp "W";
        Fp.int fp r.w_line;
        Fp.int fp r.w_word;
        fp_amo fp r.w_amo;
        Fp.bool fp r.w_stolen;
        Fp.list fp Msg.fingerprint r.w_queued;
        fp_collector fp r.w_collector
      | Atomic _ -> Fp.tag fp "A");
  let wbs =
    Hashtbl.fold (fun txn b acc -> (txn, b) :: acc) t.wb_records []
    |> List.sort (fun (t1, b1) (t2, b2) ->
           match
             compare (b1.b_line, (b1.b_mask :> int))
               (b2.b_line, (b2.b_mask :> int))
           with
           | 0 -> compare t1 t2
           | c -> c)
  in
  Fp.int fp (List.length wbs);
  List.iter
    (fun (txn, (b : wb_req)) ->
      Fp.txn fp txn;
      Fp.int fp b.b_line;
      Fp.int fp (b.b_mask :> int);
      Fp.masked_array fp ~mask:b.b_mask b.b_values)
    wbs

let owned_mask t ~line =
  match Cache_frame.find t.frame ~line with
  | Some l -> l.owned
  | None -> Mask.empty
