(** DeNovo L1 (paper §II-C, Table II).

    Per-word Invalid/Valid/Owned state.  Reads miss as word-granularity
    ReqV (the response may opportunistically fill the rest of the line);
    stores obtain ownership with data-less word-granularity ReqO requests
    coalesced in the store buffer; RMWs obtain ownership with ReqO+data and
    execute locally — or, when [atomics_at_llc] is set (the SDG
    configuration, §IV-A), execute at the LLC via ReqWT+data.  Acquires
    flash-invalidate Valid words but preserve Owned words, which is where
    DeNovo's reuse advantage over GPU coherence comes from; replaced Owned
    words write back with ReqWB.

    As a Spandex owner the cache answers forwarded ReqV/ReqO/ReqO+data/ReqS
    and RvkO probes at word granularity, including the §III-C races:
    requests for data mid-ReqO+data are delayed, data-less downgrades
    mid-ReqO are answered immediately, forwarded ReqV for words no longer
    owned are Nacked, and a Nacked ReqV is retried then converted. *)

type config = {
  id : Spandex_proto.Msg.device_id;
  llc_id : Spandex_proto.Msg.device_id;  (** first backing-cache bank endpoint. *)
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  max_reqv_retries : int;
  atomics_at_llc : bool;
  region_of : int -> int;
      (** software region classification by line, used by region-selective
          acquires (paper II-C); pass [fun _ -> 0] when unused. *)
  policy : Spandex_l1.Spandex_policy.spec;
      (** per-request coherence policy.  [Static_own] is classic DeNovo:
          every store obtains ownership (Table II).  [Adaptive _] is the
          extension (paper V: "future caches that may dynamically adapt
          their coherence strategy"): per-line saturating reuse counters
          choose between ownership (ReqO) for lines with observed write
          reuse and write-through (ReqWT) for streaming lines, and — when
          the read threshold is enabled — promote repeatedly missed reads
          from ReqV to ReqO+data so the fill survives later acquires. *)
}

type t

val create : Spandex_sim.Engine.t -> Spandex_net.Network.t -> config -> t
val port : t -> Spandex_device.Port.t
val stats : t -> Spandex_util.Stats.t

val trace_sample : t -> time:int -> unit
(** Record MSHR and store-buffer occupancy into the engine's trace sink
    (["l1.<id>.mshr"] / ["l1.<id>.sb"] counters); no-op when disabled. *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register the chassis occupancy/stall/retry probes, labelled
    [device]. *)

(** {2 Test introspection} *)

val word_state : t -> Spandex_proto.Addr.t -> Spandex_proto.State.device
val peek_word : t -> Spandex_proto.Addr.t -> int option
val owned_words : t -> int
val valid_words : t -> int

val owned_mask : t -> line:int -> Spandex_util.Mask.t
(** Words of [line] held in Owned state — the cache's write-permission
    claim, as consumed by the model checker's SWMR oracle. *)

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state (frame,
    MSHR payloads, write-back records) for the model checker's
    visited-state cache. *)
